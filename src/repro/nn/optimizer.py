"""Optimizers: SGD with momentum, and Adam (used for fine-tuning).

Both support an optional per-parameter ``mask`` so pruned weights stay
exactly zero through fine-tuning — the mask-enforcement the paper's
prune→fine-tune stages require (Alg. 1 line 21).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base: holds parameters and optional freeze-masks."""

    def __init__(self, params: list[Tensor]) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.masks: dict[int, np.ndarray] = {}

    def set_mask(self, param: Tensor, mask: np.ndarray) -> None:
        """Constrain ``param`` to the mask's support (False = frozen at 0)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != param.shape:
            raise ValueError(f"mask shape {mask.shape} != param shape {param.shape}")
        self.masks[id(param)] = mask
        param.data *= mask

    def clear_masks(self) -> None:
        """Remove all pruning masks."""
        self.masks.clear()

    def zero_grad(self) -> None:
        """Clear gradients on all parameters."""
        for p in self.params:
            p.zero_grad()

    def _apply_mask(self, p: Tensor) -> None:
        mask = self.masks.get(id(p))
        if mask is not None:
            p.data *= mask

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(
        self, params: list[Tensor], lr: float = 0.01, momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One update over all parameters with gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g
            self._apply_mask(p)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self, params: list[Tensor], lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8, weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """One update over all parameters with gradients."""
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * g * g
            m_hat = m / (1 - self.b1**self._t)
            v_hat = v / (1 - self.b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            self._apply_mask(p)
