"""Tape-based reverse-mode autodiff on NumPy arrays.

A :class:`Tensor` wraps a float64 ndarray plus an optional gradient tape
entry.  Operations build a DAG of parent links and backward closures;
:meth:`Tensor.backward` topologically sorts the DAG once and runs the
closures in reverse, accumulating ``.grad`` on every tensor that
``requires_grad``.  Broadcasting follows NumPy semantics, with gradients
reduced back to the operand shapes (``_unbroadcast``).

The op set is deliberately small (what BERT/VGG/LSTM need) and every op is
validated against numerical differentiation in ``tests/test_nn_tensor.py``.
All hot paths are vectorised NumPy — no Python loops over elements.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad"]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference / weight updates)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum over leading dims added by broadcasting
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum over dims that were 1 in the original shape
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable array node.

    Attributes
    ----------
    data:
        The float64 payload.
    grad:
        Accumulated gradient (same shape as ``data``) after
        :meth:`backward`; ``None`` until then.
    requires_grad:
        Whether this tensor participates in differentiation.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and _grad_enabled()
        self.grad: np.ndarray | None = None
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the payload."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.data.size

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Scalar value of a 1-element tensor."""
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """A view of the data cut from the tape."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # autodiff engine
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode sweep from this tensor.

        ``grad`` seeds the output gradient (defaults to ones, so calling
        ``loss.backward()`` on a scalar is the usual entry point).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:  # iterative DFS (deep LSTM graphs overflow recursion)
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))
        if grad is None:
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        req = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=req)
        if req:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(x) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                ga = g @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ g
                other._accumulate(_unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # element-wise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------ #
    # reductions & shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            gg = np.asarray(g)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    gg = np.expand_dims(gg, a)
            self._accumulate(np.broadcast_to(gg, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        """2-D transpose."""
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, idx, g)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # structured ops used by the models
    # ------------------------------------------------------------------ #
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate along an axis (gradients split back)."""
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * g.ndim
                    sl[axis] = slice(lo, hi)
                    t._accumulate(g[tuple(sl)])

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def embedding(table: "Tensor", ids: np.ndarray) -> "Tensor":
        """Row gather ``table[ids]`` with scatter-add backward."""
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError("embedding ids must be integers")
        out_data = table.data[ids]

        def backward(g: np.ndarray) -> None:
            if table.requires_grad:
                full = np.zeros_like(table.data)
                np.add.at(full, ids.ravel(), g.reshape(-1, table.shape[-1]))
                table._accumulate(full)

        return Tensor._make(out_data, (table,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value`` (constant)."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, g))

        return Tensor._make(out_data, (self,), backward)
