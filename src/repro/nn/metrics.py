"""Evaluation metrics: accuracy, span EM/F1, BLEU.

BLEU follows Papineni et al. (the paper's NMT metric, §VII-A): modified
n-gram precision up to 4-grams, geometric mean, brevity penalty, with +1
smoothing on higher-order counts so short toy sequences score sensibly.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

__all__ = ["accuracy", "span_exact_match", "span_f1", "bleu", "corpus_bleu"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches between integer arrays."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def span_exact_match(
    pred_start: np.ndarray, pred_end: np.ndarray,
    true_start: np.ndarray, true_end: np.ndarray,
) -> float:
    """Fraction of spans matching both endpoints (SQuAD EM)."""
    ps, pe = np.asarray(pred_start), np.asarray(pred_end)
    ts, te = np.asarray(true_start), np.asarray(true_end)
    if not (ps.shape == pe.shape == ts.shape == te.shape):
        raise ValueError("span arrays must share a shape")
    if ps.size == 0:
        return 0.0
    return float(((ps == ts) & (pe == te)).mean())


def span_f1(
    pred_start: np.ndarray, pred_end: np.ndarray,
    true_start: np.ndarray, true_end: np.ndarray,
) -> float:
    """Mean token-overlap F1 between predicted and gold spans (SQuAD F1)."""
    ps, pe = np.asarray(pred_start), np.asarray(pred_end)
    ts, te = np.asarray(true_start), np.asarray(true_end)
    if not (ps.shape == pe.shape == ts.shape == te.shape):
        raise ValueError("span arrays must share a shape")
    scores = []
    for a0, a1, b0, b1 in zip(ps, pe, ts, te):
        lo, hi = max(a0, b0), min(a1, b1)
        overlap = max(0, hi - lo + 1)
        pred_len = max(1, a1 - a0 + 1)
        true_len = max(1, b1 - b0 + 1)
        if overlap == 0:
            scores.append(0.0)
            continue
        p = overlap / pred_len
        r = overlap / true_len
        scores.append(2 * p * r / (p + r))
    return float(np.mean(scores)) if scores else 0.0


def _ngrams(tokens: Sequence[int], n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def bleu(candidate: Sequence[int], reference: Sequence[int], max_n: int = 4) -> float:
    """Sentence BLEU (0–100) with +1 smoothing above unigrams."""
    return corpus_bleu([candidate], [reference], max_n=max_n)


def corpus_bleu(
    candidates: Sequence[Sequence[int]],
    references: Sequence[Sequence[int]],
    max_n: int = 4,
) -> float:
    """Corpus BLEU (0–100): pooled n-gram counts + brevity penalty."""
    if len(candidates) != len(references):
        raise ValueError("candidate/reference counts differ")
    if max_n < 1:
        raise ValueError("max_n must be >= 1")
    if not candidates:
        return 0.0
    matched = np.zeros(max_n)
    total = np.zeros(max_n)
    cand_len = 0
    ref_len = 0
    for cand, ref in zip(candidates, references):
        cand = list(cand)
        ref = list(ref)
        cand_len += len(cand)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            cg = _ngrams(cand, n)
            rg = _ngrams(ref, n)
            total[n - 1] += max(len(cand) - n + 1, 0)
            matched[n - 1] += sum(min(c, rg[g]) for g, c in cg.items())
    precisions = []
    for n in range(max_n):
        if n == 0:
            if total[0] == 0 or matched[0] == 0:
                return 0.0
            precisions.append(matched[0] / total[0])
        else:  # +1 smoothing keeps short sequences meaningful
            precisions.append((matched[n] + 1.0) / (total[n] + 1.0))
    log_p = np.mean(np.log(precisions))
    bp = 1.0 if cand_len >= ref_len else float(np.exp(1.0 - ref_len / max(cand_len, 1)))
    return float(100.0 * bp * np.exp(log_p))
