"""Calibration constants for the latency simulator, with provenance.

Every free parameter of the cost models lives here, is set **once**, and is
never varied per experiment.  Values come from two sources:

1. *published V100 characteristics* — cuBLAS/CUTLASS dense-GEMM efficiency,
   cuSparse SpMM effective throughput, BlockSparse relative efficiency; and
2. *the paper's own anchor points* — Fig. 3 (EW/VW/BW slower than dense),
   Fig. 9b (TW break-even ≈40%, 2.26× at 75%; BW-64 break-even ≈90%),
   Fig. 11 (≈2× load transactions and ≈35% slowdown at 0% TW sparsity,
   11.6× at 99%).

``tests/test_gpu_calibration.py`` asserts the anchors hold to tolerance, so
the model cannot silently drift as the code evolves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the cost models.

    Attributes
    ----------
    tc_dense_efficiency:
        Fraction of tensor-core peak that cuBLAS reaches on large FP16
        GEMMs.  Public V100 measurements put cuBLAS at 60–75 % of the 125
        TFLOPS peak for BERT-sized GEMMs; we use 0.62.
    cuda_dense_efficiency:
        Fraction of CUDA-core FP32 peak for dense SGEMM (~0.75 for cuBLAS).
    tc_k_half_sat:
        Reduction-depth at which tensor-core efficiency reaches half of its
        ceiling (short-K GEMMs cannot amortise the pipeline).
    cuda_k_half_sat:
        CUDA-core counterpart of ``tc_k_half_sat``: SGEMM saturates its SIMT
        pipeline with a much shorter main loop (no MMA fragment to fill).
        Shared by the dense CUDA-core engine and the TW kernel's CUDA-core
        branch so the two cannot drift apart.
    spmm_efficiency:
        cuSparse csrmm effective FLOP fraction of CUDA-core peak.  Public
        studies measure 2–8 % for DNN-shaped matrices at 50–95 % sparsity;
        0.05 places the EW break-even near 93 % sparsity, consistent with
        §II-B's ">95 % reported by prior work" and Fig. 3's slowdowns.
    spmm_gather_bytes_per_nnz:
        Effective DRAM bytes per non-zero in the SpMM gather (value + column
        index + rhs-row traffic after cache reuse).
    bs_block_efficiency:
        BlockSparse tensor-core efficiency by block size (absolute fraction
        of TC peak).  Anchors: BW-32 ≈3× slower than dense at ~55–60 %
        sparsity (Fig. 3); BW-64 break-even ≈90 % (Fig. 9b); BW needs ≥32
        blocks for "high performance" (§IV-B citing Child et al.).
    tw_efficiency_vs_dense:
        TW kernel ceiling relative to cuBLAS dense (the masked CUTLASS
        kernel is slightly slower than the closed-source cuBLAS).
    tw_masked_load_stall:
        Fractional slowdown of every TW main-loop iteration from the masked
        A-tile gather (``Load_A_Tile_with_Mask`` is a dependent
        mask→index→load chain the MMA pipeline cannot hide).  This is the
        mechanism behind the paper's ≈35 % loss at zero sparsity (Fig. 11):
        because the stall rides *with* compute it shrinks as pruning shrinks
        the loop, unlike a fixed memory tax.
    tw_g_half_sat:
        Granularity at which TW kernel efficiency reaches half its ceiling,
        *normalised so G = 128 ≡ 1.0* (small G under-fills the MMA
        pipeline; Fig. 9b shows G=64 slower than G=128).
    tw_a_reread_l2_factor:
        Effective divisor on the per-tile A-panel re-read traffic due to L2
        hits (each of the ``ceil(N/G)`` tiles re-reads A; some re-reads hit
        L2).  Together with ``tw_mask_bytes_factor`` this is calibrated to
        the ≈2× load-transaction anchor of Fig. 11 at 0 % sparsity.
    tw_mask_bytes_factor:
        Multiplier on int32 mask traffic (masks are re-read per thread
        block and fetched through uncoalesced 32 B sectors).
    uncoalesced_penalty:
        Traffic multiplier for the *un*-transposed layout (Fig. 7 step 1):
        a fully strided FP16 warp access touches a separate 32 B sector per
        lane (up to 16× the coalesced traffic on Volta); we use 10, which
        pins the Fig. 15 anchor that the GEMM "cannot benefit from the high
        sparsity" without the transpose optimisation.
    transpose_bw_fraction:
        Fraction of DRAM bandwidth the standalone transpose kernel achieves
        (it is a pure copy with one strided stream).
    nongemm_bytes_per_element:
        DRAM bytes per tensor element for unfused element-wise kernels
        (read + write, FP16).
    fused_kernel_discount:
        Fraction of launches+traffic removed by fusing a chain of
        element-wise kernels (paper: 39 % → 29 % non-GEMM share on BERT).
    """

    tc_dense_efficiency: float = 0.62
    cuda_dense_efficiency: float = 0.75
    tc_k_half_sat: float = 96.0
    cuda_k_half_sat: float = 24.0
    spmm_efficiency: float = 0.045
    spmm_gather_bytes_per_nnz: float = 24.0
    bs_block_efficiency: tuple[tuple[int, float], ...] = (
        (8, 0.018),
        (16, 0.045),
        (32, 0.090),
        (64, 0.052),
        (128, 0.045),
    )
    tw_efficiency_vs_dense: float = 1.0
    tw_masked_load_stall: float = 0.40
    tw_g_half_sat: float = 24.0
    tw_a_reread_l2_factor: float = 1.6
    tw_mask_bytes_factor: float = 3.0
    uncoalesced_penalty: float = 10.0
    transpose_bw_fraction: float = 0.55
    nongemm_bytes_per_element: float = 4.0
    fused_kernel_discount: float = 0.5

    def block_sparse_efficiency(self, block_size: int) -> float:
        """Interpolated BlockSparse efficiency for a square block size.

        Piecewise-linear in log2(block size); clamped at the table ends.
        The curve peaks at 32×32 — smaller blocks under-fill the MMA
        fragments, larger blocks suffer wave quantisation and intra-block
        padding (consistent with §IV-B's "BW requires a pruning unit of
        32×32 for maintaining high performance").
        """
        import math

        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        pts = self.bs_block_efficiency
        if block_size <= pts[0][0]:
            return pts[0][1]
        if block_size >= pts[-1][0]:
            return pts[-1][1]
        for (b0, e0), (b1, e1) in zip(pts, pts[1:]):
            if b0 <= block_size <= b1:
                t = (math.log2(block_size) - math.log2(b0)) / (
                    math.log2(b1) - math.log2(b0)
                )
                return e0 + t * (e1 - e0)
        raise AssertionError("unreachable")


DEFAULT_CALIBRATION = Calibration()
