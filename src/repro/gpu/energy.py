"""Energy estimation over cost breakdowns (paper §VIII, related work).

The paper positions TW against energy-oriented pruning (Yang et al.) with
the observation that "our work removes redundant computations and thus
could also reduce energy consumption".  This module quantifies that claim
with the standard event-energy model used by GPU power studies
(GPUWattch [29] is the paper's own citation for GPU energy analysis):

    E = flops · e_flop + bytes · e_dram + t_busy · P_static

Per-event energies follow published V100-class figures: ~0.4 pJ per FP16
MAC lane operation at the tensor core (≈0.2 pJ/flop), ~20 pJ/byte for HBM2
access, and ~80 W static/idle draw.  As with latency, relative comparisons
are the claim, not absolute joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.costmodel import CostBreakdown

__all__ = ["EnergyModel", "EnergyEstimate", "V100_ENERGY"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients.

    Attributes
    ----------
    pj_per_flop:
        Dynamic energy per floating-point operation (pJ).
    pj_per_dram_byte:
        Dynamic energy per DRAM byte moved (pJ).
    static_watts:
        Constant draw charged for the kernel's busy time.
    """

    pj_per_flop: float = 0.2
    pj_per_dram_byte: float = 20.0
    static_watts: float = 80.0

    def __post_init__(self) -> None:
        if min(self.pj_per_flop, self.pj_per_dram_byte, self.static_watts) < 0:
            raise ValueError(f"energy coefficients must be non-negative: {self}")

    def estimate(self, cost: CostBreakdown) -> "EnergyEstimate":
        """Energy of one kernel/sequence priced by a cost model."""
        compute_j = cost.counters.flops * self.pj_per_flop * 1e-12
        memory_j = (
            (cost.counters.bytes_loaded + cost.counters.bytes_stored)
            * self.pj_per_dram_byte
            * 1e-12
        )
        static_j = self.static_watts * cost.total_us * 1e-6
        return EnergyEstimate(
            compute_j=compute_j, memory_j=memory_j, static_j=static_j
        )


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy decomposition of one execution."""

    compute_j: float
    memory_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        """Total estimated energy."""
        return self.compute_j + self.memory_j + self.static_j

    def savings_vs(self, baseline: "EnergyEstimate") -> float:
        """Fractional energy saved relative to ``baseline`` (positive =
        this execution uses less energy)."""
        if baseline.total_j <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - self.total_j / baseline.total_j


V100_ENERGY = EnergyModel()
