"""Device specifications for the latency simulator.

The defaults describe the paper's Tesla V100 (SXM2): 80 SMs, 125 TFLOPS
FP16 tensor-core peak, 15.7 TFLOPS FP32 CUDA-core peak (§VII-A), 900 GB/s
HBM2, 6 MB L2.  T4 and A100 variants are provided for the "TW on other
platforms" discussion (§VIII) and for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "V100", "T4", "A100"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters consumed by the cost models.

    Attributes
    ----------
    name:
        Human-readable device name.
    sm_count:
        Streaming multiprocessors; one thread block of the paper's GEMM
        occupies one SM slot.
    tensor_core_tflops:
        Peak FP16 tensor-core throughput (TFLOPS).
    cuda_core_tflops:
        Peak FP32 CUDA-core throughput (TFLOPS).
    mem_bandwidth_gbs:
        Peak DRAM bandwidth (GB/s).
    l2_cache_bytes:
        L2 capacity — controls operand re-read traffic in the GEMM model.
    kernel_launch_us:
        Fixed host-side cost per kernel launch.
    max_concurrent_streams:
        Streams the scheduler may overlap (paper §VI uses CUDA streams).
    blocks_per_sm:
        Resident thread blocks per SM for the GEMM kernels (occupancy).
    sector_bytes:
        Memory transaction granularity (32 B on Volta) — converts byte
        traffic to the load/store *transaction* counters of Fig. 11.
    """

    name: str
    sm_count: int = 80
    tensor_core_tflops: float = 125.0
    cuda_core_tflops: float = 15.7
    mem_bandwidth_gbs: float = 900.0
    l2_cache_bytes: int = 6 * 1024 * 1024
    kernel_launch_us: float = 5.0
    max_concurrent_streams: int = 8
    blocks_per_sm: int = 2
    sector_bytes: int = 32

    def __post_init__(self) -> None:
        numeric = (
            self.sm_count,
            self.tensor_core_tflops,
            self.cuda_core_tflops,
            self.mem_bandwidth_gbs,
            self.l2_cache_bytes,
            self.max_concurrent_streams,
            self.blocks_per_sm,
            self.sector_bytes,
        )
        if any(v <= 0 for v in numeric):
            raise ValueError(f"device parameters must be positive: {self}")
        if self.kernel_launch_us < 0:
            raise ValueError("kernel_launch_us must be non-negative")

    @property
    def tensor_core_flops(self) -> float:
        """Tensor-core peak in FLOP/s."""
        return self.tensor_core_tflops * 1e12

    @property
    def cuda_core_flops(self) -> float:
        """CUDA-core peak in FLOP/s."""
        return self.cuda_core_tflops * 1e12

    @property
    def mem_bandwidth(self) -> float:
        """DRAM bandwidth in B/s."""
        return self.mem_bandwidth_gbs * 1e9

    @property
    def block_slots(self) -> int:
        """Concurrent thread-block slots across the device."""
        return self.sm_count * self.blocks_per_sm


V100 = DeviceSpec(name="Tesla V100-SXM2")

T4 = DeviceSpec(
    name="Tesla T4",
    sm_count=40,
    tensor_core_tflops=65.0,
    cuda_core_tflops=8.1,
    mem_bandwidth_gbs=320.0,
    l2_cache_bytes=4 * 1024 * 1024,
)

A100 = DeviceSpec(
    name="A100-SXM4",
    sm_count=108,
    tensor_core_tflops=312.0,
    cuda_core_tflops=19.5,
    mem_bandwidth_gbs=1555.0,
    l2_cache_bytes=40 * 1024 * 1024,
)
