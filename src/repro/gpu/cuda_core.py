"""Dense GEMM cost on CUDA cores (the FP32 "Dense-C" baseline).

Same structure as the tensor-core engine but against the 15.7 TFLOPS FP32
peak with FP32 operands (the paper runs all CUDA-core inference in FP32,
§VII-A).  Short-K saturation is gentler because the SIMT pipeline has no
MMA fragment to fill.
"""

from __future__ import annotations

from repro.core.tiling import TileConfig
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import (
    CostBreakdown,
    PerfCounters,
    l2_reread_factor,
    roofline_us,
    short_k_efficiency,
    tile_quantization,
    wave_efficiency,
)
from repro.gpu.device import DeviceSpec, V100
from repro.gpu.tensor_core import CANDIDATE_TILES, _tile_size_factor

__all__ = ["dense_gemm_cuda_cost"]


def _tile_efficiency(
    m: int, n: int, k: int, tile: TileConfig, device: DeviceSpec, calib: Calibration
) -> float:
    gm, gn = tile.grid(m, n)
    return (
        calib.cuda_dense_efficiency
        * _tile_size_factor(tile)
        * tile_quantization(m, n, tile.ty, tile.g)
        * wave_efficiency(gm * gn, device)
        * short_k_efficiency(k, calib.cuda_k_half_sat)
    )


def dense_gemm_cuda_cost(
    m: int,
    n: int,
    k: int,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
    tile: TileConfig | None = None,
    dtype_bytes: int = 4,
) -> CostBreakdown:
    """Price ``C(M×N) = A(M×K) @ B(K×N)`` on CUDA cores (FP32 default)."""
    if m < 0 or n < 0 or k < 0:
        raise ValueError(f"negative GEMM extent ({m}, {n}, {k})")
    if m == 0 or n == 0 or k == 0:
        return CostBreakdown(kernels=0, label="dense-cuda")
    if tile is None:
        tile = max(
            CANDIDATE_TILES,
            key=lambda t: _tile_efficiency(m, n, k, t, device, calib),
        )
    eff = _tile_efficiency(m, n, k, tile, device, calib)
    flops = 2.0 * m * n * k

    gm, gn = tile.grid(m, n)
    a_bytes = m * k * dtype_bytes
    b_bytes = k * n * dtype_bytes
    loads = a_bytes * l2_reread_factor(a_bytes, gn, device.l2_cache_bytes) + (
        b_bytes * l2_reread_factor(b_bytes, gm, device.l2_cache_bytes)
    )
    stores = float(m * n * dtype_bytes)

    compute_us, memory_us = roofline_us(
        flops, device.cuda_core_flops * eff, loads + stores, device.mem_bandwidth
    )
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=device.kernel_launch_us,
        kernels=1,
        counters=PerfCounters(
            flops=flops,
            bytes_loaded=loads,
            bytes_stored=stores,
            sector_bytes=device.sector_bytes,
        ),
        label="dense-cuda",
    )
