"""Sparse-tensor-core cost model — the hardware VW needs (Zhu et al.).

The paper's framing of vector-wise sparsity (§II-B, §VIII): VW only pays
off on the *modified* tensor core of Zhu et al. (MICRO'19), which skips the
pruned elements of each fixed-quota vector in hardware — "prior work [70]
reports a 1.5× speedup using the VW pattern, which requires non-negligible
modifications of the tensor core."

This engine models that hypothetical hardware so the repository can show
the full comparison: VW on commodity hardware (cuSparse, slower than
dense), VW on its bespoke hardware (~1.5×), and TW on *unmodified* hardware
(~2×) — the paper's software-only pitch in one table.

Model: the sparse tensor core executes only the surviving
``(1 − s)`` fraction of MACs, at a relative efficiency
``stc_relative_efficiency`` of the dense pipeline (metadata decode,
operand-gather muxing and vector-quota scheduling overheads), plus int
metadata traffic of ``ceil(log2(vector_size))`` bits per surviving element.
The default efficiency is calibrated so VW at 75 % sparsity lands at the
reported ~1.5×.
"""

from __future__ import annotations

from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import CostBreakdown, PerfCounters, roofline_us, short_k_efficiency
from repro.gpu.device import DeviceSpec, V100

__all__ = ["STC_RELATIVE_EFFICIENCY", "vw_sparse_tc_cost"]

#: Sparse-tensor-core pipeline efficiency relative to the dense tensor core,
#: calibrated to Zhu et al.'s reported ~1.5x end speedup at ~75% VW sparsity
#: (0.25 remaining work / 0.37 relative efficiency ≈ 1/1.48).
STC_RELATIVE_EFFICIENCY = 0.37


def vw_sparse_tc_cost(
    m: int,
    k: int,
    n: int,
    sparsity: float,
    vector_size: int = 16,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
    stc_relative_efficiency: float = STC_RELATIVE_EFFICIENCY,
    dtype_bytes: int = 2,
) -> CostBreakdown:
    """Price ``Y(M×N) = X(M×K) @ W`` with VW-sparse ``W`` on the modified
    tensor core of Zhu et al.

    ``sparsity`` must be expressible as a fixed per-vector quota (any value
    is accepted; the hardware rounds the quota per vector).
    """
    if min(m, k, n) < 0:
        raise ValueError(f"negative GEMM extent ({m}, {k}, {n})")
    if not (0.0 <= sparsity <= 1.0):
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    if vector_size <= 0:
        raise ValueError(f"vector_size must be positive, got {vector_size}")
    if m == 0 or n == 0 or k == 0:
        return CostBreakdown(kernels=0, label="sparse-tc")
    keep = 1.0 - sparsity
    useful_flops = 2.0 * m * n * k * keep
    eff = (
        calib.tc_dense_efficiency
        * stc_relative_efficiency
        * short_k_efficiency(max(int(k * keep), 1), calib.tc_k_half_sat)
    )
    # surviving values + per-element vector-offset metadata (1 byte covers
    # vector sizes up to 256) + dense activations + output
    nnz = k * n * keep
    loads = nnz * dtype_bytes + nnz * 1.0 + m * k * dtype_bytes
    stores = float(m * n * dtype_bytes)
    compute_us, memory_us = roofline_us(
        useful_flops, device.tensor_core_flops * eff, loads + stores, device.mem_bandwidth
    )
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=device.kernel_launch_us,
        kernels=1,
        counters=PerfCounters(
            flops=useful_flops,
            bytes_loaded=float(loads),
            bytes_stored=stores,
            sector_bytes=device.sector_bytes,
        ),
        label="sparse-tc",
    )
