"""Stream concurrency and load-balance modelling (paper §VI, Fig. 7 step 4).

TW tiles have unequal work; launched naively one kernel per batch, a small
batch leaves most SMs idle.  The paper assigns batches to CUDA streams and
lets the hardware scheduler interleave their thread blocks.  We model the
device as ``block_slots`` identical workers and compute makespans:

- **sequential**: kernels run back to back; each kernel's makespan is taken
  in isolation (idle slots wasted — the "Naive Stream" row of Fig. 7).
- **concurrent**: all blocks from all streams form one pool scheduled by
  longest-processing-time (LPT) greedy — a 4/3-approximation of the optimal
  makespan, which is how a work-stealing hardware scheduler behaves.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.gpu.device import DeviceSpec

__all__ = ["lpt_makespan", "sequential_makespan", "concurrent_makespan"]


def lpt_makespan(task_times_us: Sequence[float], n_workers: int) -> float:
    """Longest-processing-time-first greedy makespan on identical workers."""
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    tasks = sorted((t for t in task_times_us if t > 0), reverse=True)
    if not tasks:
        return 0.0
    if len(tasks) <= n_workers:
        return tasks[0]
    heap = [0.0] * n_workers
    for t in tasks:
        heapq.heappush(heap, heapq.heappop(heap) + t)
    return max(heap)


def sequential_makespan(
    kernel_block_times: Sequence[Sequence[float]], device: DeviceSpec
) -> float:
    """Kernels executed back to back, each scheduled on the full device."""
    return sum(lpt_makespan(blocks, device.block_slots) for blocks in kernel_block_times)


def concurrent_makespan(
    kernel_block_times: Sequence[Sequence[float]], device: DeviceSpec
) -> float:
    """All kernels' blocks pooled through streams (bounded by stream count).

    With fewer kernels than ``max_concurrent_streams`` everything pools; with
    more, kernels are round-robined into stream groups and the groups run
    back to back (the scheduler cannot overlap more streams than exist).
    """
    n = len(kernel_block_times)
    if n == 0:
        return 0.0
    s = device.max_concurrent_streams
    if n <= s:
        pooled = [t for blocks in kernel_block_times for t in blocks]
        return lpt_makespan(pooled, device.block_slots)
    total = 0.0
    for g0 in range(0, n, s):
        pooled = [t for blocks in kernel_block_times[g0 : g0 + s] for t in blocks]
        total += lpt_makespan(pooled, device.block_slots)
    return total
