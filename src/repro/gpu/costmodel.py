"""Shared cost-model machinery: breakdowns, counters, quantisation, roofline.

Every engine in :mod:`repro.gpu` prices a kernel (or kernel sequence) as

    total = launch_overhead + max(compute_time, memory_time)

— the classical roofline, extended with three GPU-specific effects the
paper's results hinge on:

- **tile quantisation**: output tiles cover ``ceil(M/Ty)·ceil(N/G)`` tiles'
  worth of compute even when M, N are not multiples (edge tiles run padded);
- **wave quantisation**: thread blocks execute in waves of
  ``sm_count·blocks_per_sm``; a trailing partial wave wastes slots;
- **short-K inefficiency**: the GEMM main loop cannot amortise its pipeline
  when the reduction dimension is small.

Counters convert byte traffic into 32 B-sector *transactions* so Fig. 11's
load/store counters can be reproduced directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec

__all__ = [
    "PerfCounters",
    "CostBreakdown",
    "tile_quantization",
    "wave_efficiency",
    "short_k_efficiency",
    "l2_reread_factor",
    "roofline_us",
]


@dataclass
class PerfCounters:
    """Hardware-counter analogues (paper Fig. 11).

    ``flops`` counts useful (unpadded) floating-point operations;
    transactions are byte traffic divided by the 32 B sector size.
    """

    flops: float = 0.0
    bytes_loaded: float = 0.0
    bytes_stored: float = 0.0
    sector_bytes: int = 32

    @property
    def load_transactions(self) -> float:
        """Global-memory load transactions (32 B sectors)."""
        return self.bytes_loaded / self.sector_bytes

    @property
    def store_transactions(self) -> float:
        """Global-memory store transactions (32 B sectors)."""
        return self.bytes_stored / self.sector_bytes

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate another kernel's counters."""
        return PerfCounters(
            flops=self.flops + other.flops,
            bytes_loaded=self.bytes_loaded + other.bytes_loaded,
            bytes_stored=self.bytes_stored + other.bytes_stored,
            sector_bytes=self.sector_bytes,
        )


@dataclass
class CostBreakdown:
    """Latency decomposition of one kernel or kernel sequence.

    Attributes
    ----------
    compute_us / memory_us:
        The two roofline legs (already including efficiency factors).
    launch_us:
        Total launch overhead across ``kernels`` launches (after stream
        overlap, if the engine models it).
    kernels:
        Number of kernel launches issued.
    counters:
        Aggregated performance counters.
    label:
        Engine name for reports.
    """

    compute_us: float = 0.0
    memory_us: float = 0.0
    launch_us: float = 0.0
    kernels: int = 0
    counters: PerfCounters = field(default_factory=PerfCounters)
    label: str = ""

    @property
    def busy_us(self) -> float:
        """Execution time of the kernel bodies (roofline max)."""
        return max(self.compute_us, self.memory_us)

    @property
    def total_us(self) -> float:
        """End-to-end latency including launch overhead."""
        return self.busy_us + self.launch_us

    def flops_efficiency(self, peak_flops: float) -> float:
        """Achieved fraction of ``peak_flops`` (Fig. 11's FLOPS efficiency)."""
        if self.total_us <= 0.0 or peak_flops <= 0.0:
            return 0.0
        return self.counters.flops / (self.total_us * 1e-6) / peak_flops

    def merge_serial(self, other: "CostBreakdown", label: str | None = None) -> "CostBreakdown":
        """Sequential composition: components add, counters accumulate.

        Note the roofline max is applied per-part *before* summation, so the
        merged ``busy_us`` uses the parts' totals (stored in ``compute_us``
        with ``memory_us`` folded in).
        """
        return CostBreakdown(
            compute_us=self.busy_us + other.busy_us,
            memory_us=0.0,
            launch_us=self.launch_us + other.launch_us,
            kernels=self.kernels + other.kernels,
            counters=self.counters.merge(other.counters),
            label=label if label is not None else self.label,
        )


def tile_quantization(m: int, n: int, ty: int, g: int) -> float:
    """Useful fraction of tile-covered output (≤ 1; 1 when exact multiples)."""
    if m <= 0 or n <= 0:
        return 1.0
    covered = (-(-m // ty) * ty) * (-(-n // g) * g)
    return (m * n) / covered


def wave_efficiency(n_blocks: int, device: DeviceSpec) -> float:
    """Slot utilisation across execution waves (≤ 1).

    ``n_blocks`` thread blocks run in waves of ``device.block_slots``; the
    final partial wave leaves slots idle.
    """
    if n_blocks <= 0:
        return 1.0
    slots = device.block_slots
    waves = -(-n_blocks // slots)
    return n_blocks / (waves * slots)


def short_k_efficiency(k: int, k_half_sat: float) -> float:
    """Main-loop pipeline efficiency ``k / (k + k_half)`` (≤ 1)."""
    if k <= 0:
        return 0.0
    return k / (k + k_half_sat)


def l2_reread_factor(panel_bytes: float, passes: int, l2_bytes: int) -> float:
    """How many times a shared operand panel is fetched from DRAM.

    A panel read by ``passes`` consumers is fetched once if it fits in
    (half of) L2 and proportionally more as it exceeds it, capped at one
    fetch per pass.  The square-root growth models CUTLASS-style block
    swizzling, which keeps the working set partially resident.
    """
    if passes <= 1 or panel_bytes <= 0:
        return 1.0
    half_l2 = l2_bytes / 2
    if panel_bytes <= half_l2:
        return 1.0
    return float(min(passes, (panel_bytes / half_l2) ** 0.5))


def roofline_us(flops: float, effective_flops: float, bytes_moved: float, bandwidth: float) -> tuple[float, float]:
    """Return ``(compute_us, memory_us)`` for one kernel."""
    compute_us = flops / effective_flops * 1e6 if effective_flops > 0 else 0.0
    memory_us = bytes_moved / bandwidth * 1e6 if bandwidth > 0 else 0.0
    return compute_us, memory_us
