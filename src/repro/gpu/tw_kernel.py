"""Cost model of the paper's TW masked/batched/streamed GEMM (§VI, Fig. 7).

Execution structure being priced
--------------------------------
Each TW tile is a small dense GEMM of shape ``(M × K_t) · (K_t × N_t)``,
executed as ``ceil(M/Ty)`` thread blocks.  Three optimisations (each
individually switchable, for the Fig. 15 ablation):

- **transpose** — tiles stored transposed so masked row-skipping stays
  coalesced; without it, A/C traffic pays the uncoalesced penalty and the
  GEMM "cannot benefit from the high sparsity" (paper Fig. 15);
- **batching** — equal-width tiles share one kernel launch (Fig. 7 step 3);
- **streams** — kernels run in concurrent streams so their blocks pool
  across SMs (Fig. 7 step 4), recovering the load imbalance of unequal
  tiles.

Latency composition
-------------------
The masked A-tile gather (``Load_A_Tile_with_Mask``) is a dependent
mask → index → load chain executed every main-loop iteration, which the MMA
pipeline cannot hide; it is modelled as a multiplicative per-block stall
(:attr:`Calibration.tw_masked_load_stall`).  Because the stall rides *with*
the main loop, it shrinks as pruning shrinks the loop — reproducing the
paper's observation that the ≈2× load transactions at zero sparsity cost
≈35 % latency (Fig. 11) yet the kernel still reaches 11.6× at 99 %.
The DRAM-traffic leg then combines with compute as a roofline max, exactly
like the dense engines.

Memory traffic terms (per Fig. 7's data flow):

- B payloads: each compact tile streamed once;
- A panels: every tile re-reads the activation rows it needs; an L2 factor
  (:attr:`Calibration.tw_a_reread_l2_factor`) absorbs partial reuse;
- masks: int32 ``mask_k``/``mask_n`` words fetched per thread block
  (:attr:`Calibration.tw_mask_bytes_factor` models their poor coalescing);
- C stores: one dense store per surviving output column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tile_sparsity import split_stage_sparsity
from repro.formats.tiled import TiledTWMatrix
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import CostBreakdown, PerfCounters, short_k_efficiency
from repro.gpu.device import DeviceSpec, V100
from repro.gpu.streams import concurrent_makespan, sequential_makespan

__all__ = ["TWExecutionOptions", "TWShapeStats", "tw_gemm_cost"]


@dataclass(frozen=True)
class TWExecutionOptions:
    """Switches for the paper's three implementation optimisations.

    ``engine`` selects tensor cores (FP16, the paper's main path) or CUDA
    cores (FP32 — the Fig. 10b / Fig. 14 right-column comparisons; the
    paper reports 2.86× average TW speedup there).
    """

    transpose: bool = True
    batching: bool = True
    streams: bool = True
    engine: str = "tensor_core"
    dtype_bytes: int | None = None
    ty: int = 128

    def __post_init__(self) -> None:
        if self.ty <= 0:
            raise ValueError(f"ty must be positive, got {self.ty}")
        if self.engine not in ("tensor_core", "cuda_core"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.dtype_bytes is not None and self.dtype_bytes <= 0:
            raise ValueError(f"dtype_bytes must be positive, got {self.dtype_bytes}")

    @property
    def resolved_dtype_bytes(self) -> int:
        """FP16 on tensor cores, FP32 on CUDA cores, unless overridden."""
        if self.dtype_bytes is not None:
            return self.dtype_bytes
        return 2 if self.engine == "tensor_core" else 4


@dataclass(frozen=True)
class TWShapeStats:
    """Geometry of one TW-pruned weight matrix, as the cost model sees it.

    ``tiles`` holds ``(kept_k, kept_n)`` per tile.  Built either from a real
    :class:`~repro.formats.tiled.TiledTWMatrix` or synthetically (for
    latency sweeps at arbitrary sparsity without running the pruner).
    """

    k: int
    n: int
    granularity: int
    tiles: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.k < 0 or self.n < 0:
            raise ValueError(f"negative shape ({self.k}, {self.n})")
        if self.granularity <= 0:
            raise ValueError(f"granularity must be positive, got {self.granularity}")
        for i, (kt, nt) in enumerate(self.tiles):
            if kt < 0 or nt < 0 or kt > self.k or nt > self.granularity:
                raise ValueError(f"tile {i} out of range: ({kt}, {nt})")

    @classmethod
    def from_matrix(cls, tw: TiledTWMatrix) -> "TWShapeStats":
        """Extract geometry from a compacted TW matrix."""
        return cls(
            k=tw.shape[0],
            n=tw.shape[1],
            granularity=tw.granularity,
            tiles=tuple((t.kept_k, t.kept_n) for t in tw.tiles),
        )

    @classmethod
    def synthetic(
        cls,
        k: int,
        n: int,
        granularity: int,
        sparsity: float,
        col_row_split: float = 0.5,
        imbalance_cv: float = 0.25,
        seed: int = 0,
    ) -> "TWShapeStats":
        """Generate tile geometry at a target sparsity.

        Column pruning keeps ``(1-s)^split`` of columns (grouped ``G`` at a
        time after reorganisation); per-tile kept depths follow a clipped
        lognormal with coefficient of variation ``imbalance_cv`` around the
        mean, rescaled to land on the target overall sparsity — mirroring
        the uneven tiles real pruning produces (paper Fig. 5).
        """
        if not (0.0 <= sparsity <= 1.0):
            raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
        if sparsity >= 1.0:
            return cls(k=k, n=n, granularity=granularity, tiles=())
        s_col, s_row = split_stage_sparsity(sparsity, col_row_split)
        kept_cols = max(1, int(round(n * (1.0 - s_col))))
        widths = []
        remaining = kept_cols
        while remaining > 0:
            w = min(granularity, remaining)
            widths.append(w)
            remaining -= w
        mean_k = max(1.0, k * (1.0 - s_row))
        rng = np.random.default_rng(seed)
        if imbalance_cv > 0 and len(widths) > 1:
            sigma = float(np.sqrt(np.log1p(imbalance_cv**2)))
            mult = rng.lognormal(mean=-sigma * sigma / 2.0, sigma=sigma, size=len(widths))
        else:
            mult = np.ones(len(widths))
        depths = np.clip(np.round(mean_k * mult), 1, k).astype(np.int64)
        # rescale once so Σ kt·nt tracks the target kept elements
        target_kept = (1.0 - sparsity) * k * n
        got = float(np.dot(depths, widths))
        if got > 0:
            depths = np.clip(np.round(depths * (target_kept / got)), 1, k).astype(np.int64)
        return cls(
            k=k,
            n=n,
            granularity=granularity,
            tiles=tuple((int(d), int(w)) for d, w in zip(depths, widths)),
        )

    @property
    def n_tiles(self) -> int:
        """Number of compact tiles."""
        return len(self.tiles)

    @property
    def kept_elements(self) -> int:
        """Surviving weight elements."""
        return sum(kt * nt for kt, nt in self.tiles)

    @property
    def sparsity(self) -> float:
        """Implied element sparsity."""
        total = self.k * self.n
        return 1.0 - self.kept_elements / total if total else 0.0

    def width_groups(self) -> dict[int, list[int]]:
        """Tile indices grouped by width (the batching key)."""
        groups: dict[int, list[int]] = {}
        for i, (_, nt) in enumerate(self.tiles):
            groups.setdefault(nt, []).append(i)
        return groups


def _tile_efficiency(kt: int, nt: int, calib: Calibration, engine: str) -> float:
    """Per-block efficiency of one tile (no wave effects here — the
    makespan scheduler accounts for machine fill).

    The width-saturation term is normalised to 1.0 at G=128 so that
    ``tw_efficiency_vs_dense`` and ``tw_masked_load_stall`` alone set the
    TW-vs-dense gap at the recommended granularity; narrower tiles degrade
    from there (Fig. 9b's G=64 < G=128 ordering).

    On CUDA cores the SIMT pipeline tolerates short reductions and narrow
    tiles far better than the MMA pipeline (no 16-wide fragments to fill),
    so the saturation constants relax — which is why the paper measures a
    *larger* relative TW speedup on CUDA cores (2.86× vs 1.95×).
    """
    if nt <= 0 or kt <= 0:
        return 0.0
    if engine == "tensor_core":
        base = calib.tc_dense_efficiency
        k_half = calib.tc_k_half_sat
        h = calib.tw_g_half_sat
    else:
        base = calib.cuda_dense_efficiency
        k_half = calib.cuda_k_half_sat  # shared with the cuda_core engine
        h = calib.tw_g_half_sat / 2.0
    g_sat = min(1.0, (nt / (nt + h)) * ((128.0 + h) / 128.0))
    # The masked A-tile gather is issued per surviving K-row and amortised
    # across the tile's nt output columns, so narrow tiles pay proportionally
    # more stall per FLOP — the mechanism behind Fig. 9b's G=64 < G=128
    # ordering (and why the paper does not even plot G=8 latency).
    stall = calib.tw_masked_load_stall * (128.0 / nt)
    return (
        base
        * calib.tw_efficiency_vs_dense
        * g_sat
        * short_k_efficiency(kt, k_half)
        / (1.0 + stall)
    )


def tw_gemm_cost(
    m: int,
    shape: TWShapeStats | TiledTWMatrix,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
    options: TWExecutionOptions | None = None,
) -> CostBreakdown:
    """Price ``Y(M×N) = X(M×K) @ W`` for a TW-compacted ``W``."""
    if isinstance(shape, TiledTWMatrix):
        shape = TWShapeStats.from_matrix(shape)
    options = options or TWExecutionOptions()
    if m < 0:
        raise ValueError(f"negative M {m}")
    if m == 0 or shape.n_tiles == 0 or shape.kept_elements == 0:
        return CostBreakdown(kernels=0, label="tw")

    ty = options.ty
    b = options.resolved_dtype_bytes
    gm = -(-m // ty)
    peak = (
        device.tensor_core_flops
        if options.engine == "tensor_core"
        else device.cuda_core_flops
    )
    per_slot_flops = peak / device.block_slots

    # ---- compute leg: per-block times scheduled over SM slots ---- #
    block_times_per_tile: list[float] = []
    for kt, nt in shape.tiles:
        if kt == 0 or nt == 0:
            block_times_per_tile.append(0.0)
            continue
        eff = _tile_efficiency(kt, nt, calib, options.engine)
        block_flops = 2.0 * ty * kt * nt  # padded M rows execute regardless
        block_times_per_tile.append(block_flops / (per_slot_flops * eff) * 1e6)

    if options.batching:
        groups = list(shape.width_groups().values())
    else:
        groups = [[i] for i in range(shape.n_tiles)]
    kernel_block_times = [
        [block_times_per_tile[i] for i in grp for _ in range(gm)] for grp in groups
    ]
    if options.streams:
        compute_us = concurrent_makespan(kernel_block_times, device)
    else:
        compute_us = sequential_makespan(kernel_block_times, device)

    # ---- memory leg: additive (masked loads are not hidden) ---- #
    sum_kt = sum(kt for kt, _ in shape.tiles)
    sum_nt = sum(nt for _, nt in shape.tiles)
    a_traffic = m * sum_kt * b / calib.tw_a_reread_l2_factor
    b_payload = float(shape.kept_elements * b)
    mask_traffic = (
        gm * sum(shape.k + nt for _, nt in shape.tiles) * 4.0 * calib.tw_mask_bytes_factor
    )
    stores = float(m * sum_nt * b)
    if not options.transpose:
        a_traffic *= calib.uncoalesced_penalty
        stores *= calib.uncoalesced_penalty
    loads = a_traffic + b_payload + mask_traffic
    memory_us = (loads + stores) / device.mem_bandwidth * 1e6

    launch_us = len(groups) * device.kernel_launch_us
    useful_flops = 2.0 * m * shape.kept_elements
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=launch_us,
        kernels=len(groups),
        counters=PerfCounters(
            flops=useful_flops,
            bytes_loaded=loads,
            bytes_stored=stores,
            sector_bytes=device.sector_bytes,
        ),
        label="tw",
    )
