"""TPU-like systolic-array cost model (paper §VIII "TW on Other Platforms").

The paper argues TW is feasible on any GEMM accelerator with a medium tile
size: "TW with G = 128 ... implies the requirement of 128×N×128 GEMM.  The
latest TPU adopts a relatively large systolic array (128×128), which meets
the aforementioned requirement.  However, it only exposes high-level
programming interfaces ... which makes the other optimization like
streaming concurrency difficult."

This engine makes that argument quantitative:

- a weight-stationary 128×128 array computes a GEMM as
  ``ceil(K/128) · ceil(N/128)`` weight-tile passes, each streaming the M
  activation rows through the array (+ pipeline fill/drain);
- a TW tile of ``kt × nt`` occupies the array for ``ceil(kt/128) ·
  ceil(nt/128)`` passes regardless of how much of the array it fills —
  row pruning only pays off in 128-row quanta, and G must equal the array
  width for column pruning to pay at all;
- passes are strictly sequential (no stream concurrency on the high-level
  interface).

Consequence (asserted in tests): TW-on-TPU accelerates, but less than
TW-on-GPU at equal sparsity — exactly the paper's cautious feasibility
claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.costmodel import CostBreakdown, PerfCounters
from repro.gpu.tw_kernel import TWShapeStats

__all__ = ["SystolicSpec", "TPU_V3_LIKE", "dense_gemm_systolic_cost", "tw_gemm_systolic_cost"]


@dataclass(frozen=True)
class SystolicSpec:
    """A weight-stationary systolic array accelerator.

    Attributes
    ----------
    array_dim:
        Square array edge (128 on TPU v2/v3).
    frequency_ghz:
        MAC clock.
    mem_bandwidth_gbs:
        Off-chip bandwidth for operand streaming.
    pass_setup_us:
        Fixed cost per weight-tile pass inside one fused operation (weight
        load + fill/drain beyond the pipeline term).
    tile_dispatch_us:
        Fixed cost per *separately dispatched* GEMM through the high-level
        programming interface.  A dense GEMM is one fused op (one
        dispatch); every TW tile is its own variable-shape GEMM call, and
        the interface exposes no stream concurrency to hide the dispatches
        — the §VIII limitation that keeps TW-on-TPU below TW-on-GPU.
    """

    name: str = "tpu-v3-like"
    array_dim: int = 128
    frequency_ghz: float = 0.94
    mem_bandwidth_gbs: float = 900.0
    pass_setup_us: float = 2.0
    tile_dispatch_us: float = 40.0

    def __post_init__(self) -> None:
        if self.array_dim <= 0 or self.frequency_ghz <= 0 or self.mem_bandwidth_gbs <= 0:
            raise ValueError(f"invalid systolic spec {self}")
        if self.pass_setup_us < 0 or self.tile_dispatch_us < 0:
            raise ValueError("setup/dispatch costs must be non-negative")

    @property
    def peak_flops(self) -> float:
        """2 · dim² MACs per cycle."""
        return 2.0 * self.array_dim**2 * self.frequency_ghz * 1e9


TPU_V3_LIKE = SystolicSpec()


def _pass_us(m: int, spec: SystolicSpec) -> float:
    """One weight-tile pass: stream M rows + fill/drain of 2·dim cycles."""
    cycles = m + 2 * spec.array_dim
    return cycles / (spec.frequency_ghz * 1e9) * 1e6 + spec.pass_setup_us


def dense_gemm_systolic_cost(
    m: int, n: int, k: int, spec: SystolicSpec = TPU_V3_LIKE, dtype_bytes: int = 2
) -> CostBreakdown:
    """Price a dense ``M×N×K`` GEMM on the systolic array."""
    if min(m, n, k) < 0:
        raise ValueError(f"negative GEMM extent ({m}, {n}, {k})")
    if m == 0 or n == 0 or k == 0:
        return CostBreakdown(kernels=0, label="systolic-dense")
    d = spec.array_dim
    passes = -(-k // d) * -(-n // d)
    compute_us = passes * _pass_us(m, spec)
    loads = float((m * k + k * n) * dtype_bytes)
    stores = float(m * n * dtype_bytes)
    memory_us = (loads + stores) / (spec.mem_bandwidth_gbs * 1e9) * 1e6
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=spec.tile_dispatch_us,  # one fused op
        kernels=passes,
        counters=PerfCounters(
            flops=2.0 * m * n * k, bytes_loaded=loads, bytes_stored=stores
        ),
        label="systolic-dense",
    )


def tw_gemm_systolic_cost(
    m: int,
    shape: TWShapeStats,
    spec: SystolicSpec = TPU_V3_LIKE,
    dtype_bytes: int = 2,
) -> CostBreakdown:
    """Price a TW-pruned GEMM on the systolic array.

    Every tile costs ``ceil(kt/dim) · ceil(nt/dim)`` sequential passes; the
    array cannot be partially re-used across tiles, so sub-``dim`` tile
    extents waste the remainder of the pass — the quantisation that makes
    ``G = array_dim`` the only efficient granularity (paper §VIII).
    """
    if m < 0:
        raise ValueError(f"negative M {m}")
    if m == 0 or shape.n_tiles == 0 or shape.kept_elements == 0:
        return CostBreakdown(kernels=0, label="systolic-tw")
    d = spec.array_dim
    passes = 0
    dispatched_tiles = 0
    for kt, nt in shape.tiles:
        if kt == 0 or nt == 0:
            continue
        passes += -(-kt // d) * -(-nt // d)
        dispatched_tiles += 1
    compute_us = passes * _pass_us(m, spec)
    sum_kt = sum(kt for kt, _ in shape.tiles)
    sum_nt = sum(nt for _, nt in shape.tiles)
    loads = float((m * sum_kt + shape.kept_elements) * dtype_bytes)
    stores = float(m * sum_nt * dtype_bytes)
    memory_us = (loads + stores) / (spec.mem_bandwidth_gbs * 1e9) * 1e6
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=dispatched_tiles * spec.tile_dispatch_us,  # one op per tile
        kernels=passes,
        counters=PerfCounters(
            flops=2.0 * m * shape.kept_elements,
            bytes_loaded=loads,
            bytes_stored=stores,
        ),
        label="systolic-tw",
    )
