"""Performance-counter reporting for Fig. 11.

Fig. 11 plots, against TW sparsity, the latency speedup plus three counters
normalised to the dense model: global load transactions, global store
transactions, and FLOPS efficiency (measured FLOPS over tensor-core peak).
This module turns engine :class:`~repro.gpu.costmodel.CostBreakdown` objects
into those normalised rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.costmodel import CostBreakdown
from repro.gpu.device import DeviceSpec, V100

__all__ = ["CounterRow", "normalized_counters"]


@dataclass(frozen=True)
class CounterRow:
    """One Fig. 11 sample: speedup + counters for a sparse configuration."""

    label: str
    speedup: float
    load_transactions_rel: float
    store_transactions_rel: float
    flops_efficiency: float

    def as_dict(self) -> dict[str, float | str]:
        """Serializable row (for benchmark JSON output)."""
        return {
            "label": self.label,
            "speedup": self.speedup,
            "load_transactions_rel": self.load_transactions_rel,
            "store_transactions_rel": self.store_transactions_rel,
            "flops_efficiency": self.flops_efficiency,
        }


def normalized_counters(
    sparse: CostBreakdown,
    dense: CostBreakdown,
    device: DeviceSpec = V100,
    label: str = "",
) -> CounterRow:
    """Normalise a sparse run's counters against its dense baseline."""
    if dense.total_us <= 0:
        raise ValueError("dense baseline has zero latency")
    dl = dense.counters.load_transactions
    ds = dense.counters.store_transactions
    return CounterRow(
        label=label or sparse.label,
        speedup=dense.total_us / sparse.total_us if sparse.total_us > 0 else float("inf"),
        load_transactions_rel=sparse.counters.load_transactions / dl if dl > 0 else 0.0,
        store_transactions_rel=sparse.counters.store_transactions / ds if ds > 0 else 0.0,
        flops_efficiency=sparse.flops_efficiency(device.tensor_core_flops),
    )
