"""Dense GEMM cost on tensor cores (the cuBLAS/CUTLASS "Dense-T" baseline).

Models one thread-block-tiled FP16 GEMM (Fig. 4 step 1 / Fig. 8):

- compute leg: ``2·M·N·K`` FLOPs at the tensor-core ceiling degraded by tile
  quantisation, wave quantisation, short-K pipeline efficiency, and the
  tile-size factor (cuBLAS picks the best tile from a small menu, as its
  heuristics do);
- memory leg: operand panels fetched through L2 with re-read factors from
  :func:`~repro.gpu.costmodel.l2_reread_factor`;
- one kernel launch.
"""

from __future__ import annotations

from repro.core.tiling import TileConfig
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import (
    CostBreakdown,
    PerfCounters,
    l2_reread_factor,
    roofline_us,
    short_k_efficiency,
    tile_quantization,
    wave_efficiency,
)
from repro.gpu.device import DeviceSpec, V100

__all__ = ["dense_gemm_tc_cost", "CANDIDATE_TILES", "select_tile"]

#: The tile menu cuBLAS-like heuristics choose from (Ty × G).
CANDIDATE_TILES: tuple[TileConfig, ...] = (
    TileConfig(ty=128, g=128, tz=32),
    TileConfig(ty=128, g=64, tz=32, warp_n=32),
    TileConfig(ty=64, g=128, tz=32, warp_m=32),
    TileConfig(ty=64, g=64, tz=32, warp_m=32, warp_n=32),
    TileConfig(ty=32, g=32, tz=32, warp_m=32, warp_n=32),
)


def _tile_size_factor(tile: TileConfig) -> float:
    """Relative efficiency of smaller thread-block tiles (128×128 = 1.0).

    Smaller tiles fetch operands more often per FLOP and keep fewer MMA
    fragments in flight; the square-root law matches the observed ~2×
    throughput gap between 128×128 and 32×32 CUTLASS kernels.
    """
    return min(1.0, ((tile.ty * tile.g) / (128.0 * 128.0)) ** 0.5)


def _tile_efficiency(
    m: int, n: int, k: int, tile: TileConfig, device: DeviceSpec, calib: Calibration
) -> float:
    gm, gn = tile.grid(m, n)
    return (
        calib.tc_dense_efficiency
        * _tile_size_factor(tile)
        * tile_quantization(m, n, tile.ty, tile.g)
        * wave_efficiency(gm * gn, device)
        * short_k_efficiency(k, calib.tc_k_half_sat)
    )


def select_tile(
    m: int, n: int, k: int, device: DeviceSpec = V100, calib: Calibration = DEFAULT_CALIBRATION
) -> TileConfig:
    """Pick the candidate tile maximising modelled efficiency."""
    return max(
        CANDIDATE_TILES, key=lambda t: _tile_efficiency(m, n, k, t, device, calib)
    )


def dense_gemm_tc_cost(
    m: int,
    n: int,
    k: int,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
    tile: TileConfig | None = None,
    dtype_bytes: int = 2,
) -> CostBreakdown:
    """Price ``C(M×N) = A(M×K) @ B(K×N)`` on tensor cores (FP16 default)."""
    if m < 0 or n < 0 or k < 0:
        raise ValueError(f"negative GEMM extent ({m}, {n}, {k})")
    if m == 0 or n == 0 or k == 0:
        return CostBreakdown(kernels=0, label="dense-tc")
    if tile is None:
        tile = select_tile(m, n, k, device, calib)
    eff = _tile_efficiency(m, n, k, tile, device, calib)
    flops = 2.0 * m * n * k

    gm, gn = tile.grid(m, n)
    a_bytes = m * k * dtype_bytes
    b_bytes = k * n * dtype_bytes
    loads = a_bytes * l2_reread_factor(a_bytes, gn, device.l2_cache_bytes) + (
        b_bytes * l2_reread_factor(b_bytes, gm, device.l2_cache_bytes)
    )
    stores = float(m * n * dtype_bytes)

    compute_us, memory_us = roofline_us(
        flops, device.tensor_core_flops * eff, loads + stores, device.mem_bandwidth
    )
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=device.kernel_launch_us,
        kernels=1,
        counters=PerfCounters(
            flops=flops,
            bytes_loaded=loads,
            bytes_stored=stores,
            sector_bytes=device.sector_bytes,
        ),
        label="dense-tc",
    )
