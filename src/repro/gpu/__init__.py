"""GPU latency simulator — the substrate standing in for the paper's V100.

The paper measures latency on a V100 (80 SMs, 125 TFLOPS tensor-core FP16,
15.7 TFLOPS CUDA-core FP32, ~900 GB/s HBM2).  No GPU is available here, so
this subpackage models the first-order mechanisms that produce every latency
trend in the paper:

- roofline (compute vs. DRAM bandwidth) per kernel,
- thread-block tiling, tile quantisation and wave quantisation across SMs,
- load imbalance across unequal TW tiles (makespan over blocks),
- kernel-launch overhead, batching and stream concurrency,
- uncoalesced-access and mask-load penalties,
- per-engine efficiency ceilings calibrated once against published V100 and
  paper anchor numbers (see :mod:`repro.gpu.calibration`).

Engines (one per execution path in the paper):

- :mod:`repro.gpu.tensor_core`  — cuBLAS/CUTLASS dense GEMM on tensor cores
- :mod:`repro.gpu.cuda_core`    — dense FP32 GEMM on CUDA cores
- :mod:`repro.gpu.cusparse`     — cuSparse CSR SpMM (EW / VW models)
- :mod:`repro.gpu.blocksparse`  — BlockSparse BSR GEMM (BW models)
- :mod:`repro.gpu.tw_kernel`    — the paper's TW masked/batched/streamed GEMM

All engines return a :class:`~repro.gpu.costmodel.CostBreakdown` carrying
latency components *and* performance counters (load/store transactions,
FLOPS efficiency) so Fig. 11 can be regenerated.
"""

from repro.gpu.device import A100, T4, V100, DeviceSpec
from repro.gpu.costmodel import CostBreakdown, PerfCounters
from repro.gpu.tensor_core import dense_gemm_tc_cost
from repro.gpu.cuda_core import dense_gemm_cuda_cost
from repro.gpu.cusparse import csr_spmm_cost
from repro.gpu.blocksparse import bsr_gemm_cost
from repro.gpu.tw_kernel import TWExecutionOptions, tw_gemm_cost

__all__ = [
    "DeviceSpec",
    "V100",
    "T4",
    "A100",
    "CostBreakdown",
    "PerfCounters",
    "dense_gemm_tc_cost",
    "dense_gemm_cuda_cost",
    "csr_spmm_cost",
    "bsr_gemm_cost",
    "TWExecutionOptions",
    "tw_gemm_cost",
]
