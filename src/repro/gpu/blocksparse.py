"""BlockSparse-like BSR GEMM cost (the BW execution path on tensor cores).

The torch-blocksparse library multiplies only the surviving dense blocks on
tensor cores, but at a fraction of cuBLAS efficiency: its generic block
kernel cannot match the closed-source dense pipelines, small blocks
under-fill MMA fragments, and large blocks suffer wave quantisation.  The
calibrated efficiency curve (:meth:`Calibration.block_sparse_efficiency`)
peaks at 32×32 — the block size the paper (citing Child et al.) says BW
needs "for maintaining high performance" — and reproduces the paper's
anchors: BW ≈3× slower than dense-T at its accuracy-matched sparsity
(Fig. 3) and BW-64 break-even only above ~90 % sparsity (Fig. 9b).
"""

from __future__ import annotations

from repro.formats.bsr import BSRMatrix
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import (
    CostBreakdown,
    PerfCounters,
    roofline_us,
    wave_efficiency,
)
from repro.gpu.device import DeviceSpec, V100

__all__ = ["bsr_gemm_cost", "bsr_gemm_cost_from_matrix"]


def bsr_gemm_cost(
    m: int,
    k: int,
    n: int,
    block_size: int,
    n_kept_blocks: int,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
    dtype_bytes: int = 2,
) -> CostBreakdown:
    """Price ``Y(M×N) = X(M×K) @ W(K×N)`` with block-sparse ``W``.

    ``n_kept_blocks`` square blocks of ``block_size`` survive pruning.
    """
    if min(m, k, n) < 0 or n_kept_blocks < 0:
        raise ValueError(f"negative extent ({m}, {k}, {n}, blocks={n_kept_blocks})")
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    total_blocks = -(-k // block_size) * -(-n // block_size)
    if n_kept_blocks > total_blocks:
        raise ValueError(
            f"n_kept_blocks={n_kept_blocks} exceeds grid capacity {total_blocks}"
        )
    if m == 0 or n == 0 or k == 0 or n_kept_blocks == 0:
        return CostBreakdown(kernels=0, label="blocksparse")

    flops = 2.0 * m * block_size * block_size * n_kept_blocks
    # one thread block per (kept weight block × M row-panel of block_size)
    launched_blocks = n_kept_blocks * -(-m // max(block_size, 32))
    eff = calib.block_sparse_efficiency(block_size) * wave_efficiency(
        launched_blocks, device
    )
    # block payloads + int32 block indices + A panel per kept block + output
    loads = (
        n_kept_blocks * block_size * block_size * dtype_bytes
        + n_kept_blocks * 8
        + n_kept_blocks * m * block_size * dtype_bytes / 4.0  # L2-assisted A reuse
    )
    stores = float(m * n * dtype_bytes)
    compute_us, memory_us = roofline_us(
        flops, device.tensor_core_flops * eff, loads + stores, device.mem_bandwidth
    )
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=device.kernel_launch_us,
        kernels=1,
        counters=PerfCounters(
            flops=flops,
            bytes_loaded=float(loads),
            bytes_stored=stores,
            sector_bytes=device.sector_bytes,
        ),
        label="blocksparse",
    )


def bsr_gemm_cost_from_matrix(
    m: int,
    weight: BSRMatrix,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> CostBreakdown:
    """Convenience wrapper taking the actual BSR weight ``(K×N)``."""
    k, n = weight.shape
    br, bc = weight.block_shape
    if br != bc:
        raise ValueError(f"cost model expects square blocks, got {weight.block_shape}")
    return bsr_gemm_cost(m, k, n, br, weight.n_blocks, device, calib)
