"""cuSparse-like CSR SpMM cost (the EW / VW execution path, CUDA cores only).

cuSparse's csrmm is dominated by irregular gathers: each stored non-zero of
the weight matrix triggers a strided fetch of an activation row segment, so
its *effective* FLOP rate is a few percent of the CUDA-core peak regardless
of shape — public measurements on DNN-shaped matrices sit at 2–8 %.  This is
precisely why EW/VW sparse models lose to dense below ~93–95 % sparsity
(paper §II-B, Fig. 3), and why VW needs Zhu et al.'s modified tensor core to
pay off.

Cost: ``2·M·nnz`` useful FLOPs at ``cuda_peak · spmm_efficiency``, plus the
value/index/gather traffic for the counters.  Time is compute-leg dominated
by construction, matching the observed shape-independence of cuSparse
throughput.
"""

from __future__ import annotations

from repro.formats.csr import CSRMatrix
from repro.gpu.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpu.costmodel import CostBreakdown, PerfCounters, roofline_us
from repro.gpu.device import DeviceSpec, V100

__all__ = ["csr_spmm_cost", "csr_spmm_cost_from_matrix"]


def csr_spmm_cost(
    m: int,
    k: int,
    n: int,
    nnz: int,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
    dtype_bytes: int = 4,
) -> CostBreakdown:
    """Price ``Y(M×N) = X(M×K) @ W(K×N)`` with ``W`` sparse (``nnz`` stored).

    cuSparse executes the transposed product with ``Wᵀ`` in CSR; the cost is
    orientation-independent in this model.
    """
    if min(m, k, n) < 0 or nnz < 0:
        raise ValueError(f"negative extent ({m}, {k}, {n}, nnz={nnz})")
    if nnz > k * n:
        raise ValueError(f"nnz={nnz} exceeds matrix capacity {k * n}")
    if m == 0 or n == 0 or k == 0:
        return CostBreakdown(kernels=0, label="cusparse")
    flops = 2.0 * m * nnz
    # value + int32 column index per nnz, plus the activation gather after
    # cache reuse, plus streaming the dense output once.
    loads = nnz * (dtype_bytes + 4) + nnz * calib.spmm_gather_bytes_per_nnz + (
        m * k * dtype_bytes
    )
    stores = float(m * n * dtype_bytes)
    compute_us, memory_us = roofline_us(
        flops,
        device.cuda_core_flops * calib.spmm_efficiency,
        loads + stores,
        device.mem_bandwidth,
    )
    return CostBreakdown(
        compute_us=compute_us,
        memory_us=memory_us,
        launch_us=device.kernel_launch_us,
        kernels=1,
        counters=PerfCounters(
            flops=flops,
            bytes_loaded=float(loads),
            bytes_stored=stores,
            sector_bytes=device.sector_bytes,
        ),
        label="cusparse",
    )


def csr_spmm_cost_from_matrix(
    m: int,
    weight: CSRMatrix,
    device: DeviceSpec = V100,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> CostBreakdown:
    """Convenience wrapper taking the actual CSR weight ``(K×N)``."""
    k, n = weight.shape
    return csr_spmm_cost(m, k, n, weight.nnz, device, calib)
