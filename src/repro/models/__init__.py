"""The paper's three workloads, miniaturised for offline training.

- :mod:`repro.models.bert` — MiniBERT transformer encoder (classification
  and span-QA heads) — the paper's BERT-base on MNLI / SQuAD;
- :mod:`repro.models.vgg` — MiniVGG conv stack — the paper's VGG-16 on
  ImageNet;
- :mod:`repro.models.nmt` — MiniNMT LSTM encoder-decoder with attention —
  the paper's NMT on IWSLT En-Vi;
- :mod:`repro.models.registry` — constructors plus *full-size* GEMM shape
  tables (BERT-base, VGG-16, NMT) for the latency experiments, where model
  size costs nothing because the simulator prices shapes, not arrays.
"""

from repro.models.bert import BertConfig, MiniBERTClassifier, MiniBERTSpan
from repro.models.vgg import MiniVGG, VGGConfig
from repro.models.nmt import MiniNMT, NMTConfig
from repro.models.registry import (
    bert_base_gemm_shapes,
    build_model,
    nmt_gemm_shapes,
    vgg16_gemm_shapes,
)

__all__ = [
    "BertConfig",
    "MiniBERTClassifier",
    "MiniBERTSpan",
    "VGGConfig",
    "MiniVGG",
    "NMTConfig",
    "MiniNMT",
    "bert_base_gemm_shapes",
    "vgg16_gemm_shapes",
    "nmt_gemm_shapes",
    "build_model",
]
