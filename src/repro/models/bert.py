"""MiniBERT — a faithful scaled-down BERT encoder (paper Fig. 1).

Architecture per layer: multi-head self-attention + residual + LayerNorm,
then a GeLU feed-forward (dim → 4·dim → dim) + residual + LayerNorm — the
exact Transformer-layer structure of Fig. 1.  Each layer carries **six
prunable GEMM matrices** (Wq, Wk, Wv, Wo, W1, W2), matching the paper's
"each layer has 6 weight matrices (4 for the self attention and 2 for FC
layers)" accounting behind Fig. 5's 72 matrices for 12-layer BERT-base.

Two task heads mirror the paper's downstream evaluations:

- :class:`MiniBERTClassifier` — sentence(-pair) classification (MNLI/GLUE);
- :class:`MiniBERTSpan` — start/end span extraction (SQuAD).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.datasets import ClassificationSplit
from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.loss import cross_entropy
from repro.nn.tensor import Tensor, no_grad

__all__ = ["BertConfig", "MiniBERTEncoder", "MiniBERTClassifier", "MiniBERTSpan"]


@dataclass(frozen=True)
class BertConfig:
    """MiniBERT hyper-parameters (defaults sized for laptop training)."""

    vocab_size: int = 128
    dim: int = 64
    n_layers: int = 2
    n_heads: int = 4
    max_len: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim % self.n_heads:
            raise ValueError(f"dim {self.dim} not divisible by heads {self.n_heads}")
        if min(self.vocab_size, self.dim, self.n_layers, self.max_len) <= 0:
            raise ValueError(f"invalid config {self}")

    @property
    def ffn_dim(self) -> int:
        """Feed-forward width (BERT uses 4×dim)."""
        return 4 * self.dim


class TransformerLayer(Module):
    """One encoder layer: MHA + FFN with post-LN residuals (BERT style)."""

    def __init__(self, cfg: BertConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.attn = MultiHeadSelfAttention(cfg.dim, cfg.n_heads, rng=rng)
        self.ln1 = LayerNorm(cfg.dim)
        self.fc1 = Linear(cfg.dim, cfg.ffn_dim, rng=rng)
        self.fc2 = Linear(cfg.ffn_dim, cfg.dim, rng=rng)
        self.ln2 = LayerNorm(cfg.dim)

    def forward(self, x: Tensor, padding_mask: np.ndarray | None = None) -> Tensor:
        x = self.ln1(x + self.attn(x, padding_mask))
        return self.ln2(x + self.fc2(F.gelu(self.fc1(x))))

    def prunable_weights(self) -> list[Tensor]:
        """The six GEMM matrices of this layer, in the paper's order."""
        return self.attn.projection_weights() + [self.fc1.weight, self.fc2.weight]


class MiniBERTEncoder(Module):
    """Token+position embeddings followed by ``n_layers`` Transformer layers."""

    def __init__(self, cfg: BertConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(cfg.seed)
        self.cfg = cfg
        self.tok = Embedding(cfg.vocab_size, cfg.dim, rng=rng)
        self.pos = Embedding(cfg.max_len, cfg.dim, rng=rng)
        self.layers = [TransformerLayer(cfg, rng) for _ in range(cfg.n_layers)]
        for i, layer in enumerate(self.layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, ids: np.ndarray, padding_mask: np.ndarray | None = None) -> Tensor:
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"expected (batch, seq) ids, got shape {ids.shape}")
        if ids.shape[1] > self.cfg.max_len:
            raise ValueError(f"sequence {ids.shape[1]} exceeds max_len {self.cfg.max_len}")
        x = self.tok(ids) + self.pos(np.arange(ids.shape[1]))
        for layer in self.layers:
            x = layer(x, padding_mask)
        return x

    def prunable_weights(self) -> list[Tensor]:
        """6 matrices per layer (4 attention + 2 FC), paper's Fig. 5 set."""
        out: list[Tensor] = []
        for layer in self.layers:
            out.extend(layer.prunable_weights())
        return out


class MiniBERTClassifier(Module):
    """MiniBERT with a CLS-position classification head (MNLI-like tasks)."""

    def __init__(self, cfg: BertConfig, n_classes: int = 3) -> None:
        super().__init__()
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.encoder = MiniBERTEncoder(cfg)
        self.head = Linear(cfg.dim, n_classes, rng=np.random.default_rng(cfg.seed + 1))
        self.n_classes = n_classes

    def forward(self, ids: np.ndarray) -> Tensor:
        hidden = self.encoder(ids)
        return self.head(hidden[:, 0, :])  # CLS position

    def loss(self, split: ClassificationSplit, idx: np.ndarray) -> Tensor:
        """Batch cross-entropy (the Trainer's loss_fn signature)."""
        return cross_entropy(self(split.x[idx]), split.y[idx])

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Greedy class predictions without building the tape."""
        out = []
        with no_grad():
            for lo in range(0, x.shape[0], batch_size):
                out.append(self(x[lo : lo + batch_size]).data.argmax(axis=1))
        return np.concatenate(out) if out else np.zeros(0, dtype=np.int64)

    def evaluate(self, split: ClassificationSplit) -> float:
        """Test accuracy."""
        from repro.nn.metrics import accuracy

        return accuracy(self.predict(split.x), split.y)

    def prunable_weights(self) -> list[Tensor]:
        """Encoder GEMMs only — heads stay dense, as in the paper."""
        return self.encoder.prunable_weights()


class MiniBERTSpan(Module):
    """MiniBERT with a start/end span head (SQuAD-like tasks)."""

    def __init__(self, cfg: BertConfig) -> None:
        super().__init__()
        self.encoder = MiniBERTEncoder(cfg)
        self.head = Linear(cfg.dim, 2, rng=np.random.default_rng(cfg.seed + 2))

    def forward(self, ids: np.ndarray) -> tuple[Tensor, Tensor]:
        hidden = self.encoder(ids)             # (b, s, d)
        logits = self.head(hidden)             # (b, s, 2)
        return logits[:, :, 0], logits[:, :, 1]

    def loss(self, split: ClassificationSplit, idx: np.ndarray) -> Tensor:
        start_logits, end_logits = self(split.x[idx])
        l_start = cross_entropy(start_logits, split.extra["start"][idx])
        l_end = cross_entropy(end_logits, split.extra["end"][idx])
        return (l_start + l_end) * 0.5

    def predict(self, x: np.ndarray, batch_size: int = 64) -> tuple[np.ndarray, np.ndarray]:
        """Greedy start/end predictions."""
        starts, ends = [], []
        with no_grad():
            for lo in range(0, x.shape[0], batch_size):
                s_logits, e_logits = self(x[lo : lo + batch_size])
                starts.append(s_logits.data.argmax(axis=1))
                ends.append(e_logits.data.argmax(axis=1))
        return np.concatenate(starts), np.concatenate(ends)

    def evaluate(self, split: ClassificationSplit) -> float:
        """Span F1 (the paper's SQuAD accuracy axis)."""
        from repro.nn.metrics import span_f1

        ps, pe = self.predict(split.x)
        return span_f1(ps, pe, split.extra["start"], split.extra["end"])

    def prunable_weights(self) -> list[Tensor]:
        """Encoder GEMMs only."""
        return self.encoder.prunable_weights()
