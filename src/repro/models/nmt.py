"""MiniNMT — LSTM encoder-decoder with Luong attention (paper's NMT).

The paper evaluates an attention-based encoder-decoder LSTM on IWSLT En-Vi
(BLEU metric, §VII-A), reproduced from the TensorFlow seq2seq tutorial.
This miniature keeps the same computational skeleton:

- a unidirectional LSTM encoder over the source,
- an LSTM decoder whose hidden state attends over encoder states
  (Luong-style general attention) before the output projection,
- teacher forcing for training, greedy decoding for BLEU.

Prunable GEMMs: the encoder/decoder fused gate matrices (``w_ih``/``w_hh``),
the attention bilinear map, the attentional-combination projection and the
vocabulary projection — the LSTM layer's "native GEMM operations" (§II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.datasets import ClassificationSplit, Seq2SeqDataset
from repro.nn.layers import Embedding, Linear, LSTMCell, Module
from repro.nn.loss import sequence_cross_entropy
from repro.nn.metrics import corpus_bleu
from repro.nn.tensor import Tensor, no_grad

__all__ = ["NMTConfig", "MiniNMT"]


@dataclass(frozen=True)
class NMTConfig:
    """MiniNMT hyper-parameters."""

    vocab_size: int = 64
    dim: int = 48
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 8 or self.dim <= 0:
            raise ValueError(f"invalid config {self}")


class MiniNMT(Module):
    """Encoder-decoder with attention on the synthetic translation task."""

    def __init__(self, cfg: NMTConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(cfg.seed)
        self.cfg = cfg
        d = cfg.dim
        self.src_emb = Embedding(cfg.vocab_size, d, rng=rng)
        self.tgt_emb = Embedding(cfg.vocab_size, d, rng=rng)
        self.encoder = LSTMCell(d, d, rng=rng)
        self.decoder = LSTMCell(d, d, rng=rng)
        self.attn_w = Linear(d, d, bias=False, rng=rng)     # Luong "general" score
        self.combine = Linear(2 * d, d, rng=rng)            # attentional vector
        self.out_proj = Linear(d, cfg.vocab_size, rng=rng)  # vocabulary logits

    # ------------------------------------------------------------------ #
    def encode(self, src: np.ndarray) -> tuple[list[Tensor], tuple[Tensor, Tensor]]:
        """Run the encoder; returns per-step states and the final state."""
        src = np.asarray(src)
        b, s = src.shape
        h, c = self.encoder.init_state(b)
        states: list[Tensor] = []
        emb = self.src_emb(src)  # (b, s, d)
        for t in range(s):
            h, c = self.encoder(emb[:, t, :], (h, c))
            states.append(h)
        return states, (h, c)

    def _attend(self, dec_h: Tensor, enc_stack: Tensor, src_pad: np.ndarray) -> Tensor:
        """Luong attention: softmax(dec_h · W · enc) weighted context."""
        query = self.attn_w(dec_h)                       # (b, d)
        scores = (enc_stack @ query.reshape(query.shape[0], query.shape[1], 1))[
            :, :, 0
        ]                                                # (b, s)
        scores = scores.masked_fill(src_pad, -1e9)
        weights = F.softmax(scores, axis=-1)             # (b, s)
        w3 = weights.reshape(weights.shape[0], weights.shape[1], 1)
        return (enc_stack * w3).sum(axis=1)              # (b, d)

    def decode_step(
        self,
        token: np.ndarray,
        state: tuple[Tensor, Tensor],
        enc_stack: Tensor,
        src_pad: np.ndarray,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """One decoder step: embed → LSTM → attend → combine → logits."""
        emb = self.tgt_emb(np.asarray(token))
        h, c = self.decoder(emb, state)
        ctx = self._attend(h, enc_stack, src_pad)
        attentional = self.combine(Tensor.concat([ctx, h], axis=1)).tanh()
        return self.out_proj(attentional), (h, c)

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        """Teacher-forced logits ``(b, len(tgt_in), vocab)``."""
        states, state = self.encode(src)
        enc_stack = Tensor.concat(
            [s.reshape(s.shape[0], 1, s.shape[1]) for s in states], axis=1
        )
        src_pad = np.asarray(src) == Seq2SeqDataset.pad_id
        logits = []
        for t in range(np.asarray(tgt_in).shape[1]):
            step_logits, state = self.decode_step(
                np.asarray(tgt_in)[:, t], state, enc_stack, src_pad
            )
            logits.append(step_logits.reshape(step_logits.shape[0], 1, -1))
        return Tensor.concat(logits, axis=1)

    # ------------------------------------------------------------------ #
    def loss(self, split: ClassificationSplit, idx: np.ndarray) -> Tensor:
        """Teacher-forced token cross-entropy, padding excluded."""
        src = split.x[idx]
        tgt = split.y[idx]
        logits = self(src, tgt[:, :-1])
        return sequence_cross_entropy(logits, tgt[:, 1:], pad_id=Seq2SeqDataset.pad_id)

    def greedy_decode(self, src: np.ndarray, max_len: int | None = None) -> list[list[int]]:
        """Greedy translations (token lists without BOS/EOS/PAD)."""
        src = np.asarray(src)
        max_len = max_len or src.shape[1] + 2
        with no_grad():
            states, state = self.encode(src)
            enc_stack = Tensor.concat(
                [s.reshape(s.shape[0], 1, s.shape[1]) for s in states], axis=1
            )
            src_pad = src == Seq2SeqDataset.pad_id
            token = np.full(src.shape[0], Seq2SeqDataset.bos_id, dtype=np.int64)
            done = np.zeros(src.shape[0], dtype=bool)
            outputs: list[list[int]] = [[] for _ in range(src.shape[0])]
            for _ in range(max_len):
                logits, state = self.decode_step(token, state, enc_stack, src_pad)
                token = logits.data.argmax(axis=1)
                for i, t in enumerate(token):
                    if done[i]:
                        continue
                    if t == Seq2SeqDataset.eos_id:
                        done[i] = True
                    elif t != Seq2SeqDataset.pad_id:
                        outputs[i].append(int(t))
                if done.all():
                    break
        return outputs

    def evaluate(self, split: ClassificationSplit) -> float:
        """Corpus BLEU of greedy decodes against the references."""
        hyps = self.greedy_decode(split.x)
        refs = []
        for row in split.y:
            content = row[(row != Seq2SeqDataset.pad_id)]
            refs.append([int(t) for t in content[1:-1]])  # strip BOS/EOS
        return corpus_bleu(hyps, refs)

    def prunable_weights(self) -> list[Tensor]:
        """All GEMM matrices of the seq2seq stack."""
        return (
            self.encoder.gemm_weights()
            + self.decoder.gemm_weights()
            + [self.attn_w.weight, self.combine.weight, self.out_proj.weight]
        )
