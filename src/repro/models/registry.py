"""Model zoo + full-size GEMM shape tables for the latency experiments.

Accuracy experiments train the Mini* models; latency experiments price the
*paper's* full-size GEMM shapes on the simulator (model size costs nothing
there).  This module is the single source of truth for both.

Shapes are ``(m, k, n, count)``: ``A(M×K) @ B(K×N)`` repeated ``count``
times per forward pass, with ``B`` the prunable weight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.bert import BertConfig, MiniBERTClassifier, MiniBERTSpan
from repro.models.nmt import MiniNMT, NMTConfig
from repro.models.vgg import MiniVGG, VGGConfig

__all__ = [
    "GemmShape",
    "bert_base_gemm_shapes",
    "vgg16_gemm_shapes",
    "nmt_gemm_shapes",
    "build_model",
    "nongemm_time_fraction",
]


@dataclass(frozen=True)
class GemmShape:
    """One weight GEMM in a model's forward pass."""

    m: int
    k: int
    n: int
    count: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.count) <= 0:
            raise ValueError(f"invalid GEMM shape {self}")

    @property
    def flops(self) -> float:
        """Total multiply-add FLOPs across repetitions."""
        return 2.0 * self.m * self.k * self.n * self.count


def bert_base_gemm_shapes(batch: int = 64, seq: int = 128) -> list[GemmShape]:
    """BERT-base weight GEMMs (12 layers, hidden 768, FFN 3072).

    Six weight matrices per layer (4 attention projections + 2 FC), the
    accounting behind the paper's 72 matrices (Fig. 5).  ``M`` is the token
    count in flight — the paper's throughput-oriented inference setting.
    """
    if batch <= 0 or seq <= 0:
        raise ValueError("batch and seq must be positive")
    m = batch * seq
    hidden, ffn, layers = 768, 3072, 12
    return [
        GemmShape(m, hidden, hidden, count=4 * layers, name="attn-proj"),
        GemmShape(m, hidden, ffn, count=layers, name="ffn-1"),
        GemmShape(m, ffn, hidden, count=layers, name="ffn-2"),
    ]


#: VGG-16 convolution stack: (channels_in, channels_out, spatial_out) per
#: conv layer at 224×224 input, from Simonyan & Zisserman Table 1.
_VGG16_CONVS: tuple[tuple[int, int, int], ...] = (
    (3, 64, 224), (64, 64, 224),
    (64, 128, 112), (128, 128, 112),
    (128, 256, 56), (256, 256, 56), (256, 256, 56),
    (256, 512, 28), (512, 512, 28), (512, 512, 28),
    (512, 512, 14), (512, 512, 14), (512, 512, 14),
)


def vgg16_gemm_shapes(batch: int = 8) -> list[GemmShape]:
    """VGG-16's 13 conv layers (im2col-lowered) + 3 FC layers (§VII-A).

    After im2col, conv ``l`` is a GEMM with ``M = batch·OH·OW``,
    ``K = C_in·9`` and ``N = C_out`` — the matrix the paper prunes.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    shapes = [
        GemmShape(batch * s * s, c_in * 9, c_out, name=f"conv{i + 1}")
        for i, (c_in, c_out, s) in enumerate(_VGG16_CONVS)
    ]
    shapes += [
        GemmShape(batch, 512 * 7 * 7, 4096, name="fc1"),
        GemmShape(batch, 4096, 4096, name="fc2"),
        GemmShape(batch, 4096, 1000, name="fc3"),
    ]
    return shapes


def nmt_gemm_shapes(
    batch: int = 64, seq: int = 32, hidden: int = 512, vocab: int = 8000
) -> list[GemmShape]:
    """Attention NMT GEMMs: fused LSTM gates + attention + projection.

    Encoder/decoder gate GEMMs batch all time steps (``M = batch·seq``,
    ``N = 4·hidden``); the vocabulary projection dominates the decoder.
    """
    if min(batch, seq, hidden, vocab) <= 0:
        raise ValueError("all extents must be positive")
    m = batch * seq
    return [
        GemmShape(m, hidden, 4 * hidden, count=2, name="enc-gates"),
        GemmShape(m, hidden, 4 * hidden, count=2, name="dec-gates"),
        GemmShape(m, hidden, hidden, count=1, name="attention"),
        GemmShape(m, 2 * hidden, hidden, count=1, name="combine"),
        GemmShape(m, hidden, vocab, count=1, name="vocab-proj"),
    ]


def nongemm_time_fraction(model: str, fused: bool) -> float:
    """Non-GEMM share of end-to-end dense latency (paper §VI).

    BERT spends ~39 % in non-GEMM kernels unfused, ~29 % with the paper's
    kernel fusion; NMT is similar but lighter; VGG only ~5 % (which is why
    Fig. 15 omits it).
    """
    table = {
        "bert": (0.39, 0.29),
        "nmt": (0.30, 0.22),
        "vgg": (0.05, 0.04),
    }
    if model not in table:
        raise KeyError(f"unknown model {model!r}; expected one of {sorted(table)}")
    unfused, fused_frac = table[model]
    return fused_frac if fused else unfused


def build_model(name: str, **overrides):
    """Construct a Mini* model by name (``bert``, ``bert-span``, ``vgg``,
    ``nmt``) with config overrides."""
    if name == "bert":
        n_classes = overrides.pop("n_classes", 3)
        return MiniBERTClassifier(BertConfig(**overrides), n_classes=n_classes)
    if name == "bert-span":
        return MiniBERTSpan(BertConfig(**overrides))
    if name == "vgg":
        return MiniVGG(VGGConfig(**overrides))
    if name == "nmt":
        return MiniNMT(NMTConfig(**overrides))
    raise KeyError(f"unknown model {name!r}")
