"""MiniVGG — a scaled-down VGG-style CNN (paper §VII-A's VGG-16).

Structure mirrors VGG: stacked 3×3 same-padding convolutions in widening
stages separated by 2×2 max-pools, finished by fully-connected layers.
Every convolution's weight lives in its im2col-lowered GEMM form (the
matrix the paper prunes — "we prune its weight matrix after applying the
im2col method"), so the pruner and latency engines see the true GEMM view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.datasets import ClassificationSplit
from repro.nn.layers import Conv2d, Linear, MaxPool2d, Module
from repro.nn.loss import cross_entropy
from repro.nn.tensor import Tensor, no_grad

__all__ = ["VGGConfig", "MiniVGG"]


@dataclass(frozen=True)
class VGGConfig:
    """MiniVGG hyper-parameters.

    ``stages`` lists the channel width of each conv stage; each stage has
    two 3×3 convolutions followed by a 2×2 pool (the VGG recipe).
    """

    in_channels: int = 3
    image_size: int = 16
    stages: tuple[int, ...] = (16, 32)
    fc_dim: int = 64
    n_classes: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.stages or min(self.stages) <= 0:
            raise ValueError("stages must be non-empty positive widths")
        if self.image_size % (2 ** len(self.stages)):
            raise ValueError(
                f"image {self.image_size} not divisible by 2^{len(self.stages)} pools"
            )

    @property
    def final_spatial(self) -> int:
        """Spatial extent after all pools."""
        return self.image_size // (2 ** len(self.stages))


class MiniVGG(Module):
    """Conv stages + two FC layers, trained on the synthetic image task."""

    def __init__(self, cfg: VGGConfig) -> None:
        super().__init__()
        rng = np.random.default_rng(cfg.seed)
        self.cfg = cfg
        self.convs: list[Conv2d] = []
        self.pools: list[MaxPool2d] = []
        c = cfg.in_channels
        for si, width in enumerate(cfg.stages):
            conv_a = Conv2d(c, width, 3, padding=1, rng=rng)
            conv_b = Conv2d(width, width, 3, padding=1, rng=rng)
            setattr(self, f"conv{si}a", conv_a)
            setattr(self, f"conv{si}b", conv_b)
            self.convs.extend([conv_a, conv_b])
            pool = MaxPool2d(2)
            setattr(self, f"pool{si}", pool)
            self.pools.append(pool)
            c = width
        flat = cfg.stages[-1] * cfg.final_spatial**2
        self.fc1 = Linear(flat, cfg.fc_dim, rng=rng)
        self.fc2 = Linear(cfg.fc_dim, cfg.n_classes, rng=rng)

    def forward(self, x: np.ndarray | Tensor) -> Tensor:
        t = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))
        for si in range(len(self.cfg.stages)):
            t = self.convs[2 * si](t).relu()
            t = self.convs[2 * si + 1](t).relu()
            t = self.pools[si](t)
        n = t.shape[0]
        t = t.reshape(n, -1)
        return self.fc2(self.fc1(t).relu())

    def loss(self, split: ClassificationSplit, idx: np.ndarray) -> Tensor:
        """Batch cross-entropy (the Trainer's loss_fn signature)."""
        return cross_entropy(self(split.x[idx]), split.y[idx])

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Greedy class predictions without building the tape."""
        out = []
        with no_grad():
            for lo in range(0, x.shape[0], batch_size):
                out.append(self(x[lo : lo + batch_size]).data.argmax(axis=1))
        return np.concatenate(out) if out else np.zeros(0, dtype=np.int64)

    def evaluate(self, split: ClassificationSplit) -> float:
        """Test accuracy."""
        from repro.nn.metrics import accuracy

        return accuracy(self.predict(split.x), split.y)

    def prunable_weights(self) -> list[Tensor]:
        """im2col-lowered conv GEMMs + FC weights (the paper prunes both:
        "13 convolutional layers and 3 fully connected layers")."""
        return [c.gemm_weight() for c in self.convs] + [self.fc1.weight, self.fc2.weight]
