"""The shared name → factory :class:`Registry` every subsystem resolves through.

One registry class backs every user-facing string in the toolkit — patterns
and engines (:mod:`repro.patterns.registry`), placements
(:mod:`repro.runtime.placement`), executors (:mod:`repro.runtime.executor`),
schedules (:mod:`repro.core.schedule`) and importance metrics
(:mod:`repro.core.importance`) — which is what makes their error messages
uniform and their ``choices`` lists self-updating.  The class lives here,
below every package that uses it, so core modules can register entries
without importing the (heavier) pattern package.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

__all__ = ["Registry"]


class Registry:
    """A small name → factory map with helpful unknown-name errors.

    Entries may declare aliases; :meth:`canonical` folds an alias back to
    its primary name so cache keys and reports stay uniform.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}
        self._aliases: dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        aliases: tuple[str, ...] = (),
    ):
        """Register ``factory`` under ``name`` (usable as a decorator)."""

        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._factories or name in self._aliases:
                raise ValueError(f"{self.kind} {name!r} already registered")
            self._factories[name] = fn
            for alias in aliases:
                if alias in self._factories or alias in self._aliases:
                    raise ValueError(f"{self.kind} alias {alias!r} already registered")
                self._aliases[alias] = name
            return fn

        return _add(factory) if factory is not None else _add

    def names(self) -> list[str]:
        """Primary (canonical) names, sorted."""
        return sorted(self._factories)

    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to its primary name, or raise."""
        if name in self._factories:
            return name
        if name in self._aliases:
            return self._aliases[name]
        raise KeyError(
            f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
        )

    def __contains__(self, name: str) -> bool:
        return name in self._factories or name in self._aliases

    def create(self, name: str, **kwargs: Any) -> Any:
        """Instantiate the entry registered under ``name``."""
        return self._factories[self.canonical(name)](**kwargs)
