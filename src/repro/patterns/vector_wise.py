"""Vector-wise (VW) pattern — balanced per-vector pruning.

Divides every *column* of the weight matrix into vectors of ``vector_size``
elements (along the reduction dimension K) and prunes the same fraction
inside each vector by local importance rank (Zhu et al. MICRO'19, Yao et al.
AAAI'19; the paper uses vector size 16, Fig. 2 shows 4×1 vectors).

The fixed per-vector quota is what makes VW hardware-schedulable (every
vector has the same non-zero count) — and also what prevents it from
expressing the uneven sparsity distribution across columns and layers
(paper §IV-B "Against VW"), costing accuracy at high sparsity.

VW cannot run faster than dense on unmodified GPUs; the paper executes it
through cuSparse on CUDA cores (Fig. 3) and it requires the modified sparse
tensor core of Zhu et al. to see speedup.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.patterns.base import Pattern, PatternResult

__all__ = ["VectorWisePattern"]


class VectorWisePattern(Pattern):
    """Fixed-quota pruning inside K-direction vectors.

    Parameters
    ----------
    vector_size:
        Elements per vector (paper evaluation: 16).  The last vector of a
        column may be shorter when ``K % vector_size != 0``; it receives a
        proportionally-rounded quota.
    """

    name = "VW"

    def __init__(self, vector_size: int = 16) -> None:
        if vector_size <= 0:
            raise ValueError(f"vector_size must be positive, got {vector_size}")
        self.vector_size = vector_size

    def prune(
        self, scores: Sequence[np.ndarray], sparsity: float
    ) -> PatternResult:
        mats = self._check_inputs(scores, sparsity)
        masks = [self._prune_one(m, sparsity) for m in mats]
        return PatternResult(masks=masks)

    def _prune_one(self, scores: np.ndarray, sparsity: float) -> np.ndarray:
        k, n = scores.shape
        v = self.vector_size
        mask = np.zeros((k, n), dtype=bool)
        n_full = k // v
        if n_full:
            # vectorised path for the full vectors: (n_full, v, n) view
            body = scores[: n_full * v].reshape(n_full, v, n)
            keep_per_vec = v - int(round(sparsity * v))
            if keep_per_vec > 0:
                # rank within each vector: keep the keep_per_vec largest
                order = np.argsort(-body, axis=1, kind="stable")
                keep_idx = order[:, :keep_per_vec, :]
                grid_g, grid_n = np.meshgrid(
                    np.arange(n_full), np.arange(n), indexing="ij"
                )
                body_mask = np.zeros((n_full, v, n), dtype=bool)
                for j in range(keep_per_vec):
                    body_mask[grid_g, keep_idx[:, j, :], grid_n] = True
                mask[: n_full * v] = body_mask.reshape(n_full * v, n)
        rem = k - n_full * v
        if rem:
            tail = scores[n_full * v :]
            keep_tail = rem - int(round(sparsity * rem))
            if keep_tail > 0:
                order = np.argsort(-tail, axis=0, kind="stable")
                tail_mask = np.zeros((rem, n), dtype=bool)
                cols = np.arange(n)
                for j in range(keep_tail):
                    tail_mask[order[j, :], cols] = True
                mask[n_full * v :] = tail_mask
        return mask

    def vector_nnz_counts(self, mask: np.ndarray) -> np.ndarray:
        """Non-zeros per full vector — constant by construction (the VW
        property the hardware exploits)."""
        mask = np.asarray(mask, dtype=bool)
        k, n = mask.shape
        n_full = k // self.vector_size
        if n_full == 0:
            return np.zeros((0, n), dtype=np.int64)
        body = mask[: n_full * self.vector_size].reshape(
            n_full, self.vector_size, n
        )
        return body.sum(axis=1)
