"""String registries for sparsity patterns and execution engines.

Mirrors :mod:`repro.models.registry`: every pattern and engine the pipeline
understands is a *registry entry*, so adding a new one is one
``register(...)`` call instead of a new code path threaded through
``cli.py``, the experiments and the serving layer.  The front door
(:func:`repro.compile`) and the CLI resolve all user-facing strings here,
which is what makes their error messages uniform and their ``choices``
lists self-updating.

Two registries ship by default:

- :data:`PATTERNS` — mask-producing pruning patterns
  (:class:`~repro.patterns.base.Pattern` factories): ``ew``, ``vw``,
  ``bw``, ``tw``, ``nm``.
- :data:`ENGINES` — GEMM execution engines priced by the cost models:
  ``tensor_core`` (alias ``tc``) and ``cuda_core`` (alias ``cc``).
"""

from __future__ import annotations

from typing import Any

from repro.registry import Registry

__all__ = [
    "Registry",
    "PATTERNS",
    "ENGINES",
    "make_pattern",
    "resolve_engine",
    "available_patterns",
    "available_engines",
]


PATTERNS = Registry("pattern")
ENGINES = Registry("engine")


def _register_default_patterns() -> None:
    # deferred imports keep registry import light and cycle-free (the
    # pattern modules import repro.core, which never imports this module)
    from repro.patterns.block_wise import BlockWisePattern
    from repro.patterns.element_wise import ElementWisePattern
    from repro.patterns.n_m import NMSparsityPattern
    from repro.patterns.tile_wise import TileWisePattern
    from repro.patterns.vector_wise import VectorWisePattern

    def _tw(granularity: int = 128, config=None, **_ignored):
        return TileWisePattern(config=config) if config is not None else (
            TileWisePattern(granularity=granularity)
        )

    PATTERNS.register("tw", _tw, aliases=("tile_wise", "tilewise"))
    PATTERNS.register(
        "ew",
        lambda **kw: ElementWisePattern(),
        aliases=("element_wise",),
    )
    PATTERNS.register(
        "vw",
        lambda vector_size=16, **_kw: VectorWisePattern(vector_size=vector_size),
        aliases=("vector_wise",),
    )
    PATTERNS.register(
        "bw",
        lambda block_shape=(32, 32), **_kw: BlockWisePattern(block_shape=block_shape),
        aliases=("block_wise",),
    )
    PATTERNS.register(
        "nm",
        lambda n=2, m=4, **_kw: NMSparsityPattern(n=n, m=m),
        aliases=("n_m", "2:4"),
    )


def _register_default_engines() -> None:
    # engines are identified by their canonical string; the factory simply
    # returns it (the cost models and EngineConfig consume the name)
    ENGINES.register("tensor_core", lambda: "tensor_core", aliases=("tc",))
    ENGINES.register("cuda_core", lambda: "cuda_core", aliases=("cc",))


_register_default_patterns()
_register_default_engines()


def make_pattern(name: str, **kwargs: Any):
    """Instantiate a registered pattern by name (``tw``, ``ew``, ...)."""
    return PATTERNS.create(name, **kwargs)


def resolve_engine(name: str) -> str:
    """Canonical engine name for ``name`` (folds aliases, raises on unknown)."""
    return ENGINES.canonical(name)


def available_patterns() -> list[str]:
    """Canonical pattern names."""
    return PATTERNS.names()


def available_engines() -> list[str]:
    """Canonical engine names."""
    return ENGINES.names()
