"""N:M structured sparsity — the modern successor of vector-wise pruning.

The paper's §VIII anticipates hardware/pattern co-design beyond VW; one
year after SC'20, NVIDIA Ampere shipped exactly that: *2:4 sparsity* (keep
N of every M consecutive weights along the reduction dimension) with
hardware support in the sparse tensor core.  N:M is VW with vector size M
and a fixed quota N — included here both as a forward-looking extension
and as a second datapoint for the paper's central argument: like VW, N:M
needs *hardware* support, whereas TW runs on unmodified dense pipelines.

The pattern prunes each length-``m`` group along K to its ``n`` largest
elements by importance.  Accuracy-wise it behaves like VW with an even
tighter constraint (the paper's irregularity ordering predicts
EW > TW > VW ≥ N:M at equal sparsity, since N:M cannot even choose its
per-vector quota).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.patterns.base import Pattern, PatternResult

__all__ = ["NMSparsityPattern"]


class NMSparsityPattern(Pattern):
    """Keep ``n`` of every ``m`` consecutive weights along K.

    Parameters
    ----------
    n, m:
        The quota and group size; Ampere's hardware mode is ``n=2, m=4``.
        The achievable sparsity is fixed at ``1 − n/m`` — the ``sparsity``
        argument of :meth:`prune` is validated against it rather than used
        as a free target (there is no other sparsity an N:M pattern can
        express, which is precisely its limitation).
    """

    name = "NM"

    def __init__(self, n: int = 2, m: int = 4) -> None:
        if m <= 0 or not (0 < n <= m):
            raise ValueError(f"need 0 < n <= m, got n={n}, m={m}")
        self.n = n
        self.m = m

    @property
    def fixed_sparsity(self) -> float:
        """The only sparsity this pattern can express: ``1 − n/m``."""
        return 1.0 - self.n / self.m

    def prune(
        self, scores: Sequence[np.ndarray], sparsity: float | None = None
    ) -> PatternResult:
        """Prune every K-direction group to its ``n`` best elements.

        ``sparsity``, if given, must equal ``fixed_sparsity`` (tolerance
        1e-6); pass ``None`` to accept the pattern's intrinsic level.
        """
        if sparsity is None:
            sparsity = self.fixed_sparsity
        if abs(sparsity - self.fixed_sparsity) > 1e-6:
            raise ValueError(
                f"{self.n}:{self.m} sparsity is fixed at "
                f"{self.fixed_sparsity:.4f}; got {sparsity}"
            )
        mats = self._check_inputs(scores, sparsity)
        return PatternResult(masks=[self._prune_one(s) for s in mats])

    def _prune_one(self, scores: np.ndarray) -> np.ndarray:
        k, cols = scores.shape
        mask = np.zeros((k, cols), dtype=bool)
        n_full = k // self.m
        if n_full:
            body = scores[: n_full * self.m].reshape(n_full, self.m, cols)
            order = np.argsort(-body, axis=1, kind="stable")
            grid_g, grid_c = np.meshgrid(
                np.arange(n_full), np.arange(cols), indexing="ij"
            )
            body_mask = np.zeros_like(body, dtype=bool)
            for j in range(self.n):
                body_mask[grid_g, order[:, j, :], grid_c] = True
            mask[: n_full * self.m] = body_mask.reshape(n_full * self.m, cols)
        rem = k - n_full * self.m
        if rem:
            tail = scores[n_full * self.m :]
            quota = max(1, int(round(self.n / self.m * rem)))
            order = np.argsort(-tail, axis=0, kind="stable")
            tail_mask = np.zeros((rem, cols), dtype=bool)
            col_idx = np.arange(cols)
            for j in range(min(quota, rem)):
                tail_mask[order[j, :], col_idx] = True
            mask[n_full * self.m :] = tail_mask
        return mask

    def validate_mask(self, mask: np.ndarray) -> bool:
        """True iff every full K-group holds exactly ``n`` survivors."""
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError(f"expected 2-D mask, got ndim={mask.ndim}")
        n_full = mask.shape[0] // self.m
        if n_full == 0:
            return True
        body = mask[: n_full * self.m].reshape(n_full, self.m, mask.shape[1])
        return bool(np.all(body.sum(axis=1) == self.n))
