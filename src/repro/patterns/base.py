"""Common interface for sparsity patterns."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.masks import overall_sparsity

__all__ = ["Pattern", "PatternResult"]


@dataclass
class PatternResult:
    """Masks produced by a pattern at one sparsity level."""

    masks: list[np.ndarray] = field(default_factory=list)

    @property
    def achieved_sparsity(self) -> float:
        """Element-weighted overall sparsity of the masks."""
        return overall_sparsity(self.masks)

    def per_matrix_sparsity(self) -> list[float]:
        """Sparsity of each layer's mask."""
        return [1.0 - float(np.asarray(m).mean()) if np.asarray(m).size else 0.0
                for m in self.masks]


class Pattern(ABC):
    """A pruning pattern: scores in, keep-masks out.

    Subclasses implement :meth:`prune`; ``name`` identifies the pattern in
    reports and benchmark output (matching the paper's abbreviations).
    """

    name: str = "abstract"

    @abstractmethod
    def prune(
        self, scores: Sequence[np.ndarray], sparsity: float
    ) -> PatternResult:
        """Produce keep-masks at an overall ``sparsity`` from element scores."""

    @staticmethod
    def _check_inputs(scores: Sequence[np.ndarray], sparsity: float) -> list[np.ndarray]:
        if not (0.0 <= sparsity <= 1.0):
            raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
        mats = [np.asarray(s, dtype=np.float64) for s in scores]
        for i, m in enumerate(mats):
            if m.ndim != 2:
                raise ValueError(f"score matrix {i} must be 2-D, got ndim={m.ndim}")
        return mats
