"""Element-wise (EW) pattern — unstructured pruning.

Removes individual weights purely by importance rank (Han et al. 2015),
imposing no structural constraint.  EW is the accuracy upper bound among all
patterns at a given sparsity (paper §III-A) but produces randomly-scattered
non-zeros that defeat dense hardware: the paper measures EW *slower* than
the dense model on both CUDA cores and tensor cores (Fig. 3, Fig. 14).

Ranking may be *global* across all layers (paper default; this is what
creates the uneven per-layer sparsity of Fig. 5) or *local* per layer.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.masks import global_topk_keep_masks, topk_keep_mask
from repro.patterns.base import Pattern, PatternResult

__all__ = ["ElementWisePattern"]


class ElementWisePattern(Pattern):
    """Unstructured top-k pruning.

    Parameters
    ----------
    scope:
        ``"global"`` — one ranking across all layers (paper default);
        ``"local"`` — every layer pruned to the same sparsity independently.
    """

    name = "EW"

    def __init__(self, scope: str = "global") -> None:
        if scope not in ("global", "local"):
            raise ValueError(f"unknown scope {scope!r}")
        self.scope = scope

    def prune(
        self, scores: Sequence[np.ndarray], sparsity: float
    ) -> PatternResult:
        mats = self._check_inputs(scores, sparsity)
        if self.scope == "global":
            masks = global_topk_keep_masks(mats, sparsity)
        else:
            masks = [topk_keep_mask(m, sparsity) for m in mats]
        return PatternResult(masks=masks)
