"""Tile-wise (TW) pattern — one-shot wrapper for pattern comparisons.

The full multi-stage Algorithm 1 lives in :class:`repro.core.pruner.TWPruner`;
this wrapper exposes a single global TW step through the common
:class:`~repro.patterns.base.Pattern` interface so figure benchmarks can
sweep all patterns uniformly (Fig. 6, Fig. 13 and the motivation study use
masks at a fixed sparsity, not full prune–fine-tune runs).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.patterns.base import Pattern, PatternResult

__all__ = ["TileWisePattern"]


class TileWisePattern(Pattern):
    """One-shot global tile-wise pruning at a given granularity ``G``."""

    name = "TW"

    def __init__(self, config: TWPruneConfig | None = None, granularity: int | None = None):
        if config is not None and granularity is not None:
            raise ValueError("pass either config or granularity, not both")
        if config is None:
            config = TWPruneConfig(granularity=granularity or 128)
        self.config = config

    def prune(
        self, scores: Sequence[np.ndarray], sparsity: float
    ) -> PatternResult:
        mats = self._check_inputs(scores, sparsity)
        step = tw_prune_step(mats, sparsity, self.config)
        return PatternResult(masks=step.masks)
