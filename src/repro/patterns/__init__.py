"""Sparsity patterns: the paper's baselines plus a TW wrapper.

Every pattern maps importance scores to element keep-masks at a requested
sparsity, so accuracy/latency comparisons across patterns are uniform:

- :class:`ElementWisePattern` (EW) — unstructured pruning, the accuracy
  upper bound (Han et al. 2015).
- :class:`VectorWisePattern` (VW) — fixed per-vector sparsity (Zhu et al.
  MICRO'19 / balanced sparsity); needs modified hardware to accelerate.
- :class:`BlockWisePattern` (BW) — whole-block pruning (Narang et al. 2017);
  hardware-friendly but accuracy-hungry.
- :class:`TileWisePattern` (TW) — the paper's pattern (one-shot wrapper over
  :func:`repro.core.tile_sparsity.tw_prune_step`; use
  :class:`repro.core.pruner.TWPruner` for the full multi-stage algorithm).
- :class:`NMSparsityPattern` (N:M) — extension: Ampere-style structured
  sparsity (the hardware-supported successor of VW).
"""

from repro.patterns.base import Pattern, PatternResult
from repro.patterns.element_wise import ElementWisePattern
from repro.patterns.vector_wise import VectorWisePattern
from repro.patterns.block_wise import BlockWisePattern
from repro.patterns.tile_wise import TileWisePattern
from repro.patterns.n_m import NMSparsityPattern
from repro.patterns.registry import (
    ENGINES,
    PATTERNS,
    Registry,
    available_engines,
    available_patterns,
    make_pattern,
    resolve_engine,
)

__all__ = [
    "Pattern",
    "PatternResult",
    "ElementWisePattern",
    "VectorWisePattern",
    "BlockWisePattern",
    "TileWisePattern",
    "NMSparsityPattern",
    "Registry",
    "PATTERNS",
    "ENGINES",
    "make_pattern",
    "resolve_engine",
    "available_patterns",
    "available_engines",
]
