"""Block-wise (BW) pattern — whole-block pruning.

Divides the weight matrix into fixed ``block_shape`` blocks and prunes whole
blocks by their collective importance (Narang et al. 2017).  Surviving
blocks stay dense, so BW executes on tensor cores through block-sparse GEMM
libraries (the paper uses Tillet's torch-blocksparse) — but the coarse
granularity destroys accuracy: Fig. 6 shows BW captures far fewer of EW's
zeros than TW at equal element budget, and Fig. 9a shows a 4% accuracy drop
at 75% sparsity for 64×64 blocks.

Blocks are ranked *globally* across layers with an element-weighted budget,
mirroring the TW pruner's global ranking so comparisons isolate the pattern
shape (not the ranking scope).  Edge blocks (when the matrix is not an exact
multiple of the block shape) are allowed and weighted by their true element
count.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.patterns.base import Pattern, PatternResult

__all__ = ["BlockWisePattern"]


class BlockWisePattern(Pattern):
    """Whole-block top-k pruning.

    Parameters
    ----------
    block_shape:
        ``(rows, cols)`` of the pruning unit; the paper evaluates 8×8,
        32×32 and 64×64.
    reduction:
        Block score pooling: ``"sum"`` (default), ``"mean"``, or ``"l2"``.
        ``"mean"`` makes edge blocks commensurate with full blocks.
    """

    name = "BW"

    def __init__(
        self, block_shape: tuple[int, int] = (32, 32), reduction: str = "mean"
    ) -> None:
        br, bc = block_shape
        if br <= 0 or bc <= 0:
            raise ValueError(f"block_shape must be positive, got {block_shape}")
        if reduction not in ("sum", "mean", "l2"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.block_shape = (br, bc)
        self.reduction = reduction

    def prune(
        self, scores: Sequence[np.ndarray], sparsity: float
    ) -> PatternResult:
        mats = self._check_inputs(scores, sparsity)
        br, bc = self.block_shape

        # enumerate blocks across all layers
        block_scores: list[float] = []
        block_sizes: list[int] = []
        block_loc: list[tuple[int, int, int]] = []  # (layer, r0, c0)
        for li, m in enumerate(mats):
            k, n = m.shape
            for r0 in range(0, k, br):
                for c0 in range(0, n, bc):
                    blk = m[r0 : r0 + br, c0 : c0 + bc]
                    if self.reduction == "sum":
                        s = float(blk.sum())
                    elif self.reduction == "mean":
                        s = float(blk.mean())
                    else:
                        s = float(np.sqrt((blk**2).sum()))
                    block_scores.append(s)
                    block_sizes.append(blk.size)
                    block_loc.append((li, r0, c0))

        scores_arr = np.array(block_scores, dtype=np.float64)
        sizes_arr = np.array(block_sizes, dtype=np.float64)
        total = float(sizes_arr.sum())
        target_keep = (1.0 - sparsity) * total
        order = np.lexsort((np.arange(scores_arr.size), -scores_arr))
        masks = [np.zeros(m.shape, dtype=bool) for m in mats]
        used = 0.0
        for idx in order:
            if used >= target_keep:
                break
            li, r0, c0 = block_loc[idx]
            masks[li][r0 : r0 + br, c0 : c0 + bc] = True
            used += sizes_arr[idx]
        return PatternResult(masks=masks)

    def block_keep_grid(self, mask: np.ndarray) -> np.ndarray:
        """Boolean grid of surviving blocks for one mask (Fig. 13 view)."""
        mask = np.asarray(mask, dtype=bool)
        br, bc = self.block_shape
        k, n = mask.shape
        nbr, nbc = -(-k // br), -(-n // bc)
        out = np.zeros((nbr, nbc), dtype=bool)
        for i in range(nbr):
            for j in range(nbc):
                out[i, j] = mask[i * br : (i + 1) * br, j * bc : (j + 1) * bc].any()
        return out
