"""Result records, persistence and ASCII rendering for the bench harness.

Every benchmark writes an :class:`ExperimentRecord` to ``results/`` so
EXPERIMENTS.md's paper-vs-measured tables can be regenerated, and prints
the same series the paper's figure shows (as aligned text) so the shape is
inspectable without a plotting stack.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "ExperimentRecord",
    "format_table",
    "ascii_series",
    "ascii_bars",
    "save_results",
    "load_results",
]


@dataclass
class ExperimentRecord:
    """One experiment's reproduced data plus paper reference points."""

    experiment: str                       # e.g. "fig9b"
    description: str
    series: dict[str, Any] = field(default_factory=dict)
    paper_anchors: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready payload."""
        return {
            "experiment": self.experiment,
            "description": self.description,
            "series": self.series,
            "paper_anchors": self.paper_anchors,
            "notes": self.notes,
        }


def save_results(record: ExperimentRecord, directory: str | Path = "results") -> Path:
    """Write a record to ``directory/<experiment>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{record.experiment}.json"
    path.write_text(json.dumps(record.as_dict(), indent=2, default=float))
    return path


def load_results(experiment: str, directory: str | Path = "results") -> dict[str, Any]:
    """Load a previously-saved record."""
    path = Path(directory) / f"{experiment}.json"
    return json.loads(path.read_text())


def format_table(headers: list[str], rows: list[list[Any]], precision: int = 3) -> str:
    """Render an aligned text table."""
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.{precision}f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    xs: list[float], ys: list[float], width: int = 50, label: str = ""
) -> str:
    """Render an x/y series as one bar row per sample (log-free)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal lengths")
    if not ys:
        return f"{label}: (empty)"
    top = max(max(ys), 1e-12)
    lines = [f"{label}"] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(0, int(round(width * y / top)))
        lines.append(f"  {x:>8.3g} | {bar} {y:.3g}")
    return "\n".join(lines)


def ascii_bars(items: dict[str, float], width: int = 50) -> str:
    """Render labelled magnitudes as horizontal bars."""
    if not items:
        return "(empty)"
    top = max(max(items.values()), 1e-12)
    label_w = max(len(k) for k in items)
    lines = []
    for k, v in items.items():
        bar = "#" * max(0, int(round(width * v / top)))
        lines.append(f"  {k.ljust(label_w)} | {bar} {v:.3g}")
    return "\n".join(lines)
