"""Accuracy-latency Pareto frontiers (Fig. 14).

The paper's summary claim is that *only TW extends the Pareto frontier*:
every other pattern is dominated by the dense model (slower **and** less
accurate).  These helpers compute frontiers over (accuracy, speedup)
points, both to be maximised.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ParetoPoint", "pareto_frontier", "dominates"]


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration's outcome: accuracy (or BLEU) and latency speedup."""

    accuracy: float
    speedup: float
    label: str = ""

    def as_dict(self) -> dict[str, float | str]:
        """Serializable record for benchmark JSON output."""
        return {"accuracy": self.accuracy, "speedup": self.speedup, "label": self.label}


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True if ``a`` is at least as good as ``b`` on both axes and strictly
    better on one."""
    ge = a.accuracy >= b.accuracy and a.speedup >= b.speedup
    gt = a.accuracy > b.accuracy or a.speedup > b.speedup
    return ge and gt


def pareto_frontier(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by accuracy descending.

    Duplicate points are kept once.
    """
    frontier: list[ParetoPoint] = []
    for p in points:
        if any(dominates(q, p) for q in points):
            continue
        if p not in frontier:
            frontier.append(p)
    return sorted(frontier, key=lambda p: (-p.accuracy, -p.speedup))
