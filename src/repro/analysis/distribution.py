"""Sparsity-distribution analyses (Figs. 5, 6 and 13).

- Fig. 5 plots the per-matrix sparsity of an EW-pruned BERT at 75 % — the
  *uneven distribution* TW exploits and VW cannot.
- Fig. 6 plots the cumulative distribution of per-unit zero fractions for
  different pruning-unit shapes overlaid on an EW mask: TW's 1×G row units
  capture more fully-zero units than BW's square blocks at equal element
  count, which is the irregularity argument EW > TW > BW.
- Fig. 13 shows the surviving-weight heat-maps of the four patterns.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "per_matrix_sparsity",
    "unit_zero_fractions",
    "zero_fraction_cdf",
    "mask_heatmap",
]


def per_matrix_sparsity(masks: Sequence[np.ndarray]) -> np.ndarray:
    """Sparsity of each mask (Fig. 5's y-axis, one value per matrix)."""
    out = []
    for m in masks:
        m = np.asarray(m, dtype=bool)
        out.append(1.0 - float(m.mean()) if m.size else 0.0)
    return np.array(out)


def unit_zero_fractions(
    mask: np.ndarray, unit_shape: tuple[int, int]
) -> np.ndarray:
    """Zero fraction of every ``unit_shape`` tile of a keep-mask.

    Units tile the matrix without overlap; ragged edge units are included
    with their true element counts.  ``unit_shape=(1, G)`` gives TW's row
    units, ``(b, b)`` gives BW blocks — the Fig. 6 comparands.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected 2-D mask, got ndim={mask.ndim}")
    ur, uc = unit_shape
    if ur <= 0 or uc <= 0:
        raise ValueError(f"unit shape must be positive, got {unit_shape}")
    k, n = mask.shape
    fractions = []
    for r0 in range(0, k, ur):
        for c0 in range(0, n, uc):
            unit = mask[r0 : r0 + ur, c0 : c0 + uc]
            fractions.append(1.0 - float(unit.mean()))
    return np.array(fractions)


def zero_fraction_cdf(
    fractions: np.ndarray, grid: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative probability of per-unit zero fraction (Fig. 6 curves).

    Returns ``(x, cdf)`` where ``cdf[i] = P(zero fraction ≤ x[i])``.
    A pattern whose CDF is *lower* at high x has more nearly-empty units —
    more prunable structure at equal sparsity.
    """
    fractions = np.asarray(fractions, dtype=np.float64)
    if grid is None:
        grid = np.linspace(0.0, 1.0, 101)
    if fractions.size == 0:
        return grid, np.ones_like(grid)
    sorted_f = np.sort(fractions)
    cdf = np.searchsorted(sorted_f, grid, side="right") / fractions.size
    return grid, cdf


def mask_heatmap(mask: np.ndarray, grid: int = 16) -> np.ndarray:
    """Downsample a keep-mask to a ``grid×grid`` density map (Fig. 13).

    Each cell holds the surviving-weight density of its region — enough to
    *see* the pattern structure (EW speckle, VW uniformity, BW blocks, TW
    stripes) in text output without a plotting stack.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim != 2:
        raise ValueError(f"expected 2-D mask, got ndim={mask.ndim}")
    if grid <= 0:
        raise ValueError(f"grid must be positive, got {grid}")
    k, n = mask.shape
    out = np.zeros((min(grid, k), min(grid, n)))
    gr, gc = out.shape
    row_edges = np.linspace(0, k, gr + 1).astype(int)
    col_edges = np.linspace(0, n, gc + 1).astype(int)
    for i in range(gr):
        for j in range(gc):
            cell = mask[row_edges[i] : row_edges[i + 1], col_edges[j] : col_edges[j + 1]]
            out[i, j] = cell.mean() if cell.size else 0.0
    return out
