"""Analysis utilities behind the paper's figures.

- :mod:`repro.analysis.distribution` — per-matrix sparsity (Fig. 5),
  zero-element CDFs across pruning-unit shapes (Fig. 6), weight heat-maps
  (Fig. 13);
- :mod:`repro.analysis.pareto` — accuracy-latency Pareto frontiers
  (Fig. 14);
- :mod:`repro.analysis.reporting` — result records, JSON persistence and
  ASCII rendering for the benchmark harnesses.
"""

from repro.analysis.distribution import (
    mask_heatmap,
    per_matrix_sparsity,
    unit_zero_fractions,
    zero_fraction_cdf,
)
from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.analysis.reporting import (
    ExperimentRecord,
    ascii_bars,
    ascii_series,
    format_table,
    load_results,
    save_results,
)

__all__ = [
    "per_matrix_sparsity",
    "unit_zero_fractions",
    "zero_fraction_cdf",
    "mask_heatmap",
    "ParetoPoint",
    "pareto_frontier",
    "ExperimentRecord",
    "format_table",
    "ascii_series",
    "ascii_bars",
    "save_results",
    "load_results",
]
