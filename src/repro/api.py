"""One front door for the paper's pipeline: :func:`compile` and :func:`tune`.

The reproduction's contribution is a *pipeline* — tile-wise prune → compact
TW format → batching/stream plan → batched GEMM execution — and this module
is its single entry point.  Instead of hand-wiring ``tw_prune_step`` →
``TiledTWMatrix.from_masks`` → ``build_execution_plan`` → ``tw_gemm`` at
every call site, callers write::

    import repro

    model = repro.compile(weights, pattern="tw", sparsity=0.75,
                          granularity=128, engine="tensor_core")
    model.prune_report()      # what the pruner kept
    model.price(m=8192)       # cost-model latency vs the dense baseline
    y = model.run(x)          # batched TW forward (bit-identical to the
                              # hand-wired pipeline)
    model.save("model.npz")   # offline artifact (repro.load round-trips)
    server = model.serve()    # warm TWModelServer, caches pre-seeded

:func:`compile` one-shot-prunes *frozen* weights.  The paper's headline
accuracy numbers come from the **training-time** procedure instead —
gradual sparsity targets, per-stage importance re-scoring, mask-constrained
fine-tuning, and optionally the TEW element-wise overlay — and
:func:`tune` is its front door::

    result = repro.tune(adapter, pattern="tw", sparsity=0.75,
                        schedule="gradual", n_stages=4,
                        importance="taylor", tew=0.05)
    result.trajectory()       # per-stage sparsity / metric history
    y = result.run(x)         # TW GEMM (+ CSC residual pass for TEW)
    result.compiled.serve()   # same CompiledTWModel artifact as compile()

Patterns (``tw``, ``ew``, ``vw``, ``bw``, ``nm``), engines
(``tensor_core``, ``cuda_core``), schedules (``gradual``, ``oneshot``) and
importance metrics (``taylor``, ``magnitude``) are resolved through string
registries (:mod:`repro.patterns.registry`, :mod:`repro.core.schedule`,
:mod:`repro.core.importance`); multi-device placement (``single``,
``replicated``, ``layer_sharded``) through
:mod:`repro.runtime.placement` — every new entry is a registry
registration, not a new code path.

Two compilation sources:

- **weight matrices** (arrays, or an ``repro.nn`` module) — the full
  pipeline runs: pruning, compaction, per-device plans, execution;
- **a model name** (``"bert"``, ``"vgg"``, ``"nmt"``) — the paper's
  full-size GEMM shape tables are compiled for *pricing only* (the cost
  model needs no weights); ``run``/``serve``/``save`` explain what to pass
  instead.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.apriori import AprioriConfig
from repro.core.importance import ImportanceConfig, magnitude_score, resolve_importance
from repro.core.masks import overall_sparsity
from repro.core.pruner import ArrayModel, PrunableModel, TWPruner, stage_scores
from repro.core.schedule import GradualSchedule, resolve_schedule
from repro.core.tew import TEWConfig, TEWSolution, tew_overlay
from repro.core.tile_sparsity import TWPruneConfig, TWStepResult, tw_prune_step
from repro.formats.csc import CSCMatrix
from repro.formats.tiled import TiledTWMatrix
from repro.gpu.device import DeviceSpec
from repro.gpu.tw_kernel import TWShapeStats
from repro.kernels.fusion import (
    EPILOGUES,
    EpilogueSpec,
    apply_epilogue,
    resolve_epilogue_spec,
)
from repro.kernels.masked import tw_gemm
from repro.kernels.spmm import csc_left_spmm
from repro.models.registry import GemmShape
from repro.patterns.registry import PATTERNS, make_pattern, resolve_engine
from repro.runtime.engine import (
    EndToEndReport,
    EngineConfig,
    InferenceEngine,
    LayerPlan,
    engine_for_dtype,
)
from repro.runtime.placement import Placement, resolve_placement
from repro.runtime.scheduler import ExecutionPlan, build_execution_plan
from repro.runtime.server import ServerConfig, TWModelServer, weight_fingerprint

__all__ = [
    "compile",
    "tune",
    "load",
    "CompiledTWModel",
    "CompiledLayer",
    "PriceReport",
    "TuneResult",
    "TuneStage",
    "demo_layer_stack",
]

#: patterns the cost model can price directly (LayerPlan vocabulary);
#: ``nm`` is priced as ``vw`` — both need hardware support and fall back
#: to cuSparse-on-CUDA-cores in the simulator
_PRICE_AS = {
    "tw": "tw",
    "tew": "tew",
    "ew": "ew",
    "vw": "vw",
    "bw": "bw",
    "nm": "vw",
    "dense": "dense",
}

#: compile-time strings that are not mask registry entries but are still
#: accepted: the dense baseline, and TEW which only the cost model knows
#: (the mask-level overlay needs the multi-stage pipeline in
#: repro.experiments.accuracy)
_NON_REGISTRY_PATTERNS = ("dense", "tew")


@dataclass(frozen=True)
class CompiledLayer:
    """One layer of a compiled model: formats, plans, cache identity.

    For TW compilations every field is populated; for mask-only patterns
    (``ew``/``vw``/``bw``/``nm``) only ``dense`` + ``mask`` are (execution
    falls back to masked-dense GEMM); for shape-only compilations only
    ``shape`` is.
    """

    name: str
    shape: tuple[int, int]
    dense: np.ndarray | None = None
    mask: np.ndarray | None = None
    col_keep: np.ndarray | None = None
    row_masks: tuple[np.ndarray, ...] = ()
    tw: TiledTWMatrix | None = None
    plans: dict[DeviceSpec, ExecutionPlan] = field(default_factory=dict)
    epilogue: EpilogueSpec | None = None
    fingerprint: str = ""

    @property
    def sparsity(self) -> float:
        """Element sparsity of this layer after pruning."""
        if self.tw is not None:
            return self.tw.sparsity
        if self.mask is not None:
            return 1.0 - float(np.asarray(self.mask).mean())
        return 0.0

    def masked_dense(self) -> np.ndarray:
        """The mask-expanded weight, memoised (mask-only execution path).

        Both operands are frozen, so the product is computed once and
        parked in the instance ``__dict__`` — the same memo idiom the
        kernels use for group operands.
        """
        hit = self.__dict__.get("_masked_dense")
        if hit is None:
            hit = self.dense * self.mask
            object.__setattr__(self, "_masked_dense", hit)
        return hit


@dataclass(frozen=True)
class PriceReport:
    """Cost-model pricing of a compiled model vs its dense baseline.

    ``gemm_speedup`` is the paper's main reported quantity;
    ``end_to_end`` is populated for named-model compilations (where the
    non-GEMM Amdahl fraction is known) and ``None`` for raw weight stacks.
    """

    label: str
    pattern: str
    engine: str
    m: int
    sparse_gemm_us: float
    dense_gemm_us: float
    end_to_end: EndToEndReport | None = None
    dtype: str = ""

    @property
    def gemm_speedup(self) -> float:
        """Dense-baseline GEMM time over sparse GEMM time."""
        return self.dense_gemm_us / self.sparse_gemm_us if self.sparse_gemm_us > 0 else 0.0


class CompiledTWModel:
    """A pruned, compacted, planned model — the pipeline's one artifact.

    Owns per-layer compact formats and per-device
    :class:`~repro.runtime.scheduler.ExecutionPlan`\\ s, so every consumer
    (forward execution, cost-model pricing, serialization, serving) reads
    the *same* compiled state instead of re-running parts of the pipeline.
    """

    def __init__(
        self,
        layers: list[CompiledLayer],
        *,
        pattern: str,
        sparsity: float,
        granularity: int,
        engine: str,
        placement: Placement,
        achieved_sparsity: float | None = None,
        model_name: str | None = None,
        price_shapes: list[GemmShape] | None = None,
    ) -> None:
        self.layers = layers
        self.pattern = pattern
        self.sparsity = sparsity
        self.granularity = granularity
        self.engine = engine
        self.placement = placement
        self.model_name = model_name
        self._price_shapes = price_shapes
        if achieved_sparsity is None:
            total = sum(l.shape[0] * l.shape[1] for l in layers) or 1
            kept = sum((1.0 - l.sparsity) * l.shape[0] * l.shape[1] for l in layers)
            achieved_sparsity = 1.0 - kept / total
        self.achieved_sparsity = achieved_sparsity

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_layers(self) -> int:
        """Compiled layers."""
        return len(self.layers)

    @property
    def executable(self) -> bool:
        """Whether :meth:`run` can execute (weights were compiled)."""
        return bool(self.layers) and all(
            l.tw is not None or (l.dense is not None and l.mask is not None)
            for l in self.layers
        )

    @property
    def dtype(self) -> np.dtype:
        """Payload dtype of the compiled formats."""
        for l in self.layers:
            if l.tw is not None:
                return l.tw.dtype
            if l.dense is not None:
                return l.dense.dtype
        return np.dtype(np.float64)

    def _require_weights(self, what: str) -> None:
        if not self.executable:
            raise ValueError(
                f"cannot {what}: this model was compiled from "
                f"{self.model_name or 'shapes'!r} shapes only — "
                "pass weight matrices (or an repro.nn module) to repro.compile() "
                "to get an executable model"
            )

    def shard_layout(self) -> list[str]:
        """Device slot (``name#index``) owning each layer under the placement."""
        return self.placement.shard_labels(self.n_layers)

    def prune_report(self) -> dict:
        """What pruning kept: per-layer and overall sparsity, tile geometry."""
        self._require_weights("report pruning")
        rows = []
        for l in self.layers:
            row = {
                "name": l.name,
                "shape": list(l.shape),
                "sparsity": round(l.sparsity, 6),
            }
            if l.tw is not None:
                row.update(
                    tiles=l.tw.n_tiles,
                    kept_columns=l.tw.kept_columns,
                    load_imbalance=round(l.tw.load_imbalance(), 4),
                    memory_bytes=l.tw.memory_bytes(),
                )
            rows.append(row)
        return {
            "pattern": self.pattern,
            "granularity": self.granularity,
            "target_sparsity": self.sparsity,
            "achieved_sparsity": round(self.achieved_sparsity, 6),
            "placement": {
                "kind": self.placement.kind,
                "devices": [d.name for d in self.placement.devices],
            },
            "layers": rows,
        }

    # ------------------------------------------------------------------ #
    # pricing (cost model)
    # ------------------------------------------------------------------ #
    def price(
        self,
        m: int = 8192,
        infer: InferenceEngine | None = None,
        *,
        dtype: str | None = None,
    ) -> PriceReport:
        """Cost-model latency of this model vs its dense baseline.

        Named-model compilations price the paper's full-size shape tables
        (GEMM-only speedup + the Fig. 15 end-to-end breakdown); weight
        compilations price each layer at ``m`` activation rows using the
        *real* compiled tile geometry (``TWShapeStats.from_matrix``), not a
        synthetic sparsity model.

        ``dtype`` selects the cost model's precision axis: ``"float16"``
        and ``"int8"`` price the tensor-core pipeline at 2-/1-byte traffic,
        ``"float32"``/``"float64"`` the CUDA-core pipeline at 4-/8-byte
        traffic (the engine follows
        :func:`~repro.runtime.engine.engine_for_dtype`).  ``None`` keeps
        the compiled ``engine`` and the engine's historical default width —
        the pre-mixed-precision behaviour.
        """
        engine = engine_for_dtype(dtype) if dtype else self.engine
        if self.model_name is not None and self._price_shapes is None:
            # named-model path: delegate to the latency experiment, which
            # shares dense-baseline memos across sweeps
            from repro.experiments.latency import end_to_end_report, gemm_speedup

            price_pattern = _PRICE_AS[self.pattern]
            cfg = EngineConfig(engine=engine, dtype=dtype or "")
            speedup = gemm_speedup(
                self.model_name, price_pattern, self.sparsity,
                engine=engine, granularity=self.granularity, infer=infer,
                config=cfg,
            )
            rep = end_to_end_report(
                self.model_name, price_pattern, self.sparsity,
                cfg,
                granularity=self.granularity, infer=infer,
            )
            return PriceReport(
                label=self.model_name,
                pattern=self.pattern,
                engine=engine,
                m=0,
                sparse_gemm_us=rep.gemm_us,
                dense_gemm_us=rep.gemm_us * speedup,
                end_to_end=rep,
                dtype=dtype or "",
            )
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        from repro.experiments.latency import baseline_engine_config

        price_pattern = _PRICE_AS[self.pattern]
        infer = infer or InferenceEngine(device=self.placement.primary)
        config = EngineConfig(engine=engine, dtype=dtype or "")
        baseline_cfg = baseline_engine_config(price_pattern, config)
        sparse_us = dense_us = 0.0
        for l in self.layers:
            shape = GemmShape(m, l.shape[0], l.shape[1], name=l.name)
            plan = LayerPlan(
                shape,
                pattern=price_pattern,
                sparsity=min(l.sparsity, 1.0),
                granularity=self.granularity,
                tw_stats=TWShapeStats.from_matrix(l.tw) if l.tw is not None else None,
            )
            if price_pattern == "dense":
                sparse_us += infer.gemm_cost(LayerPlan(shape), config).total_us
            else:
                sparse_us += infer.gemm_cost(plan, config).total_us
            dense_us += infer.gemm_cost(LayerPlan(shape), baseline_cfg).total_us
        return PriceReport(
            label=self.model_name or f"{self.n_layers}-layer stack",
            pattern=self.pattern,
            engine=engine,
            m=m,
            sparse_gemm_us=sparse_us,
            dense_gemm_us=dense_us,
            dtype=dtype or "",
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """Forward ``x`` through the compiled layer stack.

        TW layers execute as width-grouped batched GEMMs replaying the
        compiled per-device plans (bit-identical to the hand-wired
        ``tw_prune → from_masks → build_execution_plan → tw_gemm``
        pipeline); mask-only patterns execute dense GEMM against the
        mask-expanded weights.  A layer carrying an
        :class:`~repro.kernels.fusion.EpilogueSpec` applies its *fused*
        epilogue right after the GEMM (the layer's own input serves as the
        residual stream for residual epilogues) — bit-identical in float64
        to the unfused ``*_reference`` composition.

        Activations are cast once, at entry, to the model's activation
        dtype — the compiled ``dtype`` for float models, ``float32`` for
        ``int8`` (weights-only quantisation keeps float activations) — so
        ``run`` and ``serve`` execute the same numerics and stay
        bit-identical.
        """
        self._require_weights("run")
        a = np.atleast_2d(np.asarray(x))
        act = np.dtype("float32") if self.dtype.kind in "iu" else self.dtype
        if a.dtype != act:
            a = a.astype(act)
        if self.layers and a.shape[1] != self.layers[0].shape[0]:
            raise ValueError(
                f"input K={a.shape[1]} != model K={self.layers[0].shape[0]}"
            )
        n = self.n_layers
        for i, l in enumerate(self.layers):
            if i and l.shape[0] != self.layers[i - 1].shape[1]:
                raise ValueError(
                    f"layer {i} K={l.shape[0]} does not chain onto layer "
                    f"{i - 1} N={self.layers[i - 1].shape[1]}"
                )
            if l.tw is not None:
                device = self.placement.device_for_layer(i, n)
                y = tw_gemm(a, l.tw, plan=l.plans.get(device))
            else:
                y = a @ l.masked_dense()
            a = apply_epilogue(y, l.epilogue, residual=a) if l.epilogue else y
        return a

    def serve(
        self,
        config: ServerConfig | None = None,
        *,
        executor: str | None = None,
        workers: int | None = None,
        cache_budget: int | None = None,
        pace: float | None = None,
        max_retries: int | None = None,
        max_queue_rows: int | None = None,
        shed_policy: str | None = None,
        watchdog_s: float | None = None,
        faults: object = None,
    ) -> TWModelServer:
        """A :class:`TWModelServer` over this model, caches pre-seeded.

        With no ``config``, the server inherits the compiled granularity,
        payload dtype and placement.  The compiled formats and per-device
        plans are adopted into the server's caches (``preload``), so the
        first request is already warm whenever the config matches.

        The keyword arguments override the corresponding
        :class:`ServerConfig` fields (with or without an explicit
        ``config``): ``executor="threaded"`` overlaps the placement's
        device slots in wall-time and ``executor="process"`` runs them as
        worker *processes* over shared-memory weight arenas (ISSUE 7) —
        outputs stay bit-identical to ``inline`` either way —
        ``cache_budget`` bounds the format/plan caches (LRU),
        ``pace`` turns on simulated-device pacing, and the
        robustness knobs (``max_retries``, ``max_queue_rows``,
        ``shed_policy``, ``watchdog_s``, ``faults``) configure the
        fault-tolerant serving path (ISSUE 6): wave retry with poison
        isolation, queue backpressure, stall watchdog and deterministic
        fault injection.  Call ``server.close()`` (or use the server as a
        context manager) when done — with a process executor that is what
        shuts the worker pool down and unlinks the arenas.
        """
        self._require_weights("serve")
        if any(l.tw is None for l in self.layers):
            raise ValueError(
                f"serving requires the TW pattern; this model was compiled "
                f"with pattern={self.pattern!r}"
            )
        if config is None:
            quantized = self.dtype.kind in "iu"
            config = ServerConfig(
                granularity=self.granularity,
                # int8 models store quantized tiles but serve float32
                # activations (weights-only quantization, fp32 accumulate)
                dtype="float32" if quantized else str(self.dtype),
                storage_dtype=str(self.dtype) if quantized else "",
                placement=self.placement,
            )
        overrides = {
            k: v
            for k, v in (
                ("executor", executor),
                ("workers", workers),
                ("cache_budget", cache_budget),
                ("pace", pace),
                ("max_retries", max_retries),
                ("max_queue_rows", max_queue_rows),
                ("shed_policy", shed_policy),
                ("watchdog_s", watchdog_s),
                ("faults", faults),
            )
            if v is not None
        }
        if overrides:
            import dataclasses

            config = dataclasses.replace(config, **overrides)
        server = TWModelServer(config)
        for i, l in enumerate(self.layers):
            server.add_layer(l.dense, l.col_keep, list(l.row_masks), epilogue=l.epilogue)
            server.preload(i, l.tw, l.plans)
        return server

    def serve_async(
        self,
        config: ServerConfig | None = None,
        *,
        max_wave_rows: int | None = None,
        stats_interval_s: float = 0.0,
        **serve_overrides,
    ):
        """An async continuous-batching ingress over this model.

        Builds a :meth:`serve` server (same ``config``/override
        semantics — ``executor=``, ``workers=``, ``faults=``, ...) and
        wraps it in a :class:`~repro.runtime.ingress.ServingLoop` that
        *owns* it: closing the loop closes the server.  Use it from an
        event loop::

            async with model.serve_async(executor="threaded") as loop:
                served = await loop.submit(x, deadline_s=0.05)

        ``max_wave_rows`` caps each admitted wave (default: the server
        config's own cap); ``stats_interval_s > 0`` emits a periodic
        one-line stats log.  Outputs are bit-identical to draining the
        same requests sequentially through :meth:`serve`.
        """
        from repro.runtime.ingress import ServingLoop

        server = self.serve(config, **serve_overrides)
        return ServingLoop(
            server,
            max_wave_rows=max_wave_rows,
            stats_interval_s=stats_interval_s,
            owns_server=True,
        )

    def serve_http(
        self,
        config: ServerConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        drain_timeout_s: float = 30.0,
        stats_json: str | None = None,
        max_wave_rows: int | None = None,
        stats_interval_s: float = 0.0,
        **serve_overrides,
    ):
        """A network front door over this model: HTTP ingress + loop + server.

        Stacks the whole serving pipeline — :meth:`serve` server (same
        ``config``/override semantics), continuous-batching
        :class:`~repro.runtime.ingress.ServingLoop`, and a
        :class:`~repro.runtime.netserve.NetServer` that owns both — so
        remote clients hit ``POST /v1/infer`` with the binary tensor
        wire format (or JSON), per-request ``X-Deadline-Ms`` budgets,
        and honest 429/504/500 terminal statuses.  Run it blocking
        (``.run()`` — drains gracefully on SIGTERM), inside an event
        loop (``async with``), or on a daemon thread (``with``)::

            net = model.serve_http(port=8080, executor="threaded")
            net.run()                       # serves until SIGTERM

        ``port=0`` binds an ephemeral port (read ``net.port`` once
        started); ``drain_timeout_s`` bounds the graceful drain so
        shutdown cannot hang past the server watchdog; ``stats_json``
        writes a final stats snapshot on shutdown.
        """
        from repro.runtime.netserve import NetServer

        loop = self.serve_async(
            config,
            max_wave_rows=max_wave_rows,
            stats_interval_s=stats_interval_s,
            **serve_overrides,
        )
        return NetServer(
            loop,
            host=host,
            port=port,
            drain_timeout_s=drain_timeout_s,
            stats_json=stats_json,
            owns_loop=True,
        )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the compiled model to one ``.npz`` (``repro.load`` reads it).

        Stores the compact tile payloads, pruning masks and compilation
        metadata — the offline artifact of the paper's §VI pre-processing.
        Plans are rebuilt deterministically at load, so they are not stored.
        """
        from repro.formats.io import save_compiled_arrays

        self._require_weights("save")
        if any(l.tw is None for l in self.layers):
            raise ValueError(
                f"only TW compilations serialize; this model used {self.pattern!r}"
            )
        meta = {
            "pattern": self.pattern,
            "sparsity": self.sparsity,
            "achieved_sparsity": self.achieved_sparsity,
            "granularity": self.granularity,
            "engine": self.engine,
            "placement_kind": self.placement.kind,
            "devices": [_device_dict(d) for d in self.placement.devices],
            "layer_names": [l.name for l in self.layers],
        }
        layers = [
            {
                "tw": l.tw,
                "col_keep": l.col_keep,
                "row_masks": list(l.row_masks),
                "epilogue": _epilogue_dict(l.epilogue),
            }
            for l in self.layers
        ]
        return save_compiled_arrays(path, meta, layers)

    @classmethod
    def load(cls, path: str | Path) -> "CompiledTWModel":
        """Reconstruct a compiled model saved with :meth:`save`.

        Tile payloads round-trip bit-exactly; execution plans are rebuilt
        (deterministic), and the dense view is re-expanded from the tiles
        (values at pruned positions are zero — they never participate in
        execution).
        """
        from repro.formats.io import load_compiled_arrays

        meta, raw_layers = load_compiled_arrays(path)
        placement = Placement(
            meta["placement_kind"],
            tuple(DeviceSpec(**d) for d in meta["devices"]),
        )
        layers = []
        n = len(raw_layers)
        for i, raw in enumerate(raw_layers):
            tw: TiledTWMatrix = raw["tw"]
            dense = tw.to_dense()
            layers.append(
                CompiledLayer(
                    name=meta["layer_names"][i],
                    shape=tw.shape,
                    dense=dense,
                    col_keep=raw["col_keep"],
                    row_masks=tuple(raw["row_masks"]),
                    tw=tw,
                    plans=_build_plans(tw, placement, i, n),
                    epilogue=_epilogue_from_dict(raw.get("epilogue")),
                    fingerprint=weight_fingerprint(
                        dense, raw["col_keep"], list(raw["row_masks"])
                    ),
                )
            )
        return cls(
            layers,
            pattern=meta["pattern"],
            sparsity=meta["sparsity"],
            granularity=meta["granularity"],
            engine=meta["engine"],
            placement=placement,
            achieved_sparsity=meta["achieved_sparsity"],
        )


def _device_dict(d: DeviceSpec) -> dict:
    import dataclasses

    return dataclasses.asdict(d)


def _epilogue_dict(spec: EpilogueSpec | None) -> dict | None:
    """An :class:`EpilogueSpec` as the plain dict ``formats.io`` persists."""
    if spec is None:
        return None
    return {
        "name": spec.name,
        "p": spec.p,
        "seed": spec.seed,
        "eps": spec.eps,
        "bias": spec.bias,
        "gamma": spec.gamma,
        "beta": spec.beta,
    }


def _epilogue_from_dict(raw: dict | None) -> EpilogueSpec | None:
    """Inverse of :func:`_epilogue_dict` (round-trips bit-exactly)."""
    if raw is None:
        return None
    return EpilogueSpec(
        name=raw["name"],
        bias=raw.get("bias"),
        gamma=raw.get("gamma"),
        beta=raw.get("beta"),
        p=float(raw["p"]),
        seed=int(raw["seed"]),
        eps=float(raw["eps"]),
    )


def _layer_epilogues(
    epilogue, weights: list[np.ndarray], dtype
) -> list[EpilogueSpec | None]:
    """Resolve the ``epilogue=`` compile argument to one spec per layer.

    Accepts ``None``, one name/:class:`EpilogueSpec` applied to every
    layer, or a sequence with one entry (name/spec/``None``) per layer.
    Neutral parameters (zero bias, unit gamma) are materialised at each
    layer's output width in the pipeline's accumulation dtype.
    """
    if epilogue is None:
        return [None] * len(weights)
    if isinstance(epilogue, (str, EpilogueSpec)):
        per_layer = [epilogue] * len(weights)
    else:
        per_layer = list(epilogue)
        if len(per_layer) != len(weights):
            raise ValueError(
                f"{len(per_layer)} epilogue entries for {len(weights)} layers"
            )
    specs = [
        resolve_epilogue_spec(e, n=w.shape[1], dtype=dtype or w.dtype)
        for e, w in zip(per_layer, weights)
    ]
    for i, (spec, w) in enumerate(zip(specs, weights)):
        if spec is None:
            continue
        if EPILOGUES.create(spec.name).uses_residual and w.shape[0] != w.shape[1]:
            raise ValueError(
                f"epilogue {spec.name!r} adds the layer input as a residual, "
                f"which needs a square layer; layer {i} is "
                f"{w.shape[0]}x{w.shape[1]}"
            )
    return specs


def _build_plans(
    tw: TiledTWMatrix, placement: Placement, layer: int, n_layers: int
) -> dict[DeviceSpec, ExecutionPlan]:
    """Execution plans for every device this layer may run on."""
    devices = placement.plan_devices(n_layers)[layer] if n_layers else ()
    return {d: build_execution_plan(tw, d) for d in devices}


def _tw_layer(
    w: np.ndarray,
    name: str,
    cfg: TWPruneConfig,
    col_keep: np.ndarray,
    row_masks: list[np.ndarray],
    mask: np.ndarray,
    placement: Placement,
    index: int,
    n_layers: int,
    dtype,
    epilogue: EpilogueSpec | None = None,
) -> CompiledLayer:
    """One fully-compiled TW layer from a weight matrix and its prune masks.

    The single construction path shared by :func:`compile` and
    :func:`tune` — both therefore execute the identical
    ``from_masks → build_execution_plan → tw_gemm`` chain, which is what
    makes their bit-identity contracts structural rather than incidental.
    """
    tw = TiledTWMatrix.from_masks(
        w, cfg.granularity, col_keep, row_masks,
        reorganize=cfg.reorganize, dtype=dtype,
    )
    return CompiledLayer(
        name=name,
        shape=tw.shape,
        dense=w,
        mask=mask,
        col_keep=col_keep,
        row_masks=tuple(row_masks),
        tw=tw,
        plans=_build_plans(tw, placement, index, n_layers),
        epilogue=epilogue,
        fingerprint=weight_fingerprint(w, col_keep, row_masks),
    )


def _normalize_weights(
    model_or_weights, names: Sequence[str] | None
) -> tuple[list[np.ndarray], list[str]]:
    """Weight matrices + layer names from any accepted model source."""
    if hasattr(model_or_weights, "prunable_weights"):
        weights = [np.asarray(t.data) for t in model_or_weights.prunable_weights()]
    elif isinstance(model_or_weights, np.ndarray):
        weights = [model_or_weights] if model_or_weights.ndim == 2 else list(model_or_weights)
    else:
        weights = [np.asarray(w) for w in model_or_weights]
    if not weights:
        raise ValueError("no weight matrices to compile")
    for i, w in enumerate(weights):
        if w.ndim != 2:
            raise ValueError(f"weight {i} must be 2-D, got ndim={w.ndim}")
    if names is None:
        names = [f"layer{i}" for i in range(len(weights))]
    elif len(names) != len(weights):
        raise ValueError(f"{len(names)} names for {len(weights)} weights")
    return weights, list(names)


def compile(
    model_or_weights,
    *,
    pattern: str = "tw",
    sparsity: float = 0.75,
    granularity: int = 128,
    engine: str = "tensor_core",
    placement: Placement | str | None = None,
    devices: Sequence[DeviceSpec] | None = None,
    dtype: np.dtype | type | None = np.float64,
    epilogue=None,
    scores: Sequence[np.ndarray] | None = None,
    prune_config: TWPruneConfig | None = None,
    pattern_kwargs: dict | None = None,
    names: Sequence[str] | None = None,
) -> CompiledTWModel:
    """Run the paper's pipeline end to end; returns a :class:`CompiledTWModel`.

    Parameters
    ----------
    model_or_weights:
        A 2-D array, a sequence of 2-D arrays (a chained layer stack), an
        ``repro.nn`` module exposing ``prunable_weights()``, or a model
        name string (``"bert"``/``"vgg"``/``"nmt"`` — shape tables, priced
        only).
    pattern:
        Registry name (``tw``, ``ew``, ``vw``, ``bw``, ``nm``; aliases
        accepted) or ``"dense"`` for the unpruned baseline.
    sparsity:
        Overall weight-sparsity target.
    granularity:
        TW tile width ``G``.
    engine:
        Registry name (``tensor_core``/``tc``, ``cuda_core``/``cc``).
    placement:
        A :class:`~repro.runtime.placement.Placement`, a kind string
        (combined with ``devices``), or ``None`` for single-device.
    dtype:
        Compact payload dtype (``None`` keeps the weights' own dtype).
        ``float64``/``float32`` store and compute at that precision;
        ``float16`` stores half-precision payloads and accumulates every
        group GEMM in float32; ``int8`` quantises each tile symmetrically
        (per-tile scale, weights-only) and serves float32 activations.
    epilogue:
        Optional fused per-layer epilogue: an
        :data:`~repro.kernels.fusion.EPILOGUES` registry name
        (``bias_gelu``, ``bias_layernorm``,
        ``dropout_residual_layernorm``), a full
        :class:`~repro.kernels.fusion.EpilogueSpec`, or a sequence with
        one entry (or ``None``) per layer.  Applied inside ``run()`` and
        the serving wave task right after each layer's GEMM — bit-identical
        in float64 to the unfused ``*_reference`` composition.
    scores:
        Element importance scores per weight; defaults to magnitude.
    prune_config:
        Full :class:`TWPruneConfig` override (TW only; ``granularity`` is
        ignored when given).
    pattern_kwargs:
        Extra registry-factory arguments (``vector_size``, ``block_shape``,
        ``n``/``m``).
    names:
        Layer names for reports.
    """
    placement = resolve_placement(placement, devices)
    engine = resolve_engine(engine)
    if pattern not in _NON_REGISTRY_PATTERNS:
        pattern = PATTERNS.canonical(pattern)

    if isinstance(model_or_weights, str):
        # price-only compilations admit the closed interval: the cost
        # model can price sparsity 1.0, only *pruning* needs headroom
        if not (0.0 <= sparsity <= 1.0):
            raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
        return _compile_named(
            model_or_weights, pattern, sparsity, granularity, engine, placement
        )
    if not (0.0 <= sparsity < 1.0):
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if pattern == "tew":
        raise ValueError(
            "tew is price-only at compile time: the mask-level TEW overlay "
            "needs the multi-stage pipeline "
            "(repro.experiments.accuracy.prune_and_evaluate)"
        )

    weights, layer_names = _normalize_weights(model_or_weights, names)
    score_mats = (
        [np.asarray(s, dtype=np.float64) for s in scores]
        if scores is not None
        else [magnitude_score(w) for w in weights]
    )
    if len(score_mats) != len(weights):
        raise ValueError(f"{len(score_mats)} score matrices for {len(weights)} weights")

    n = len(weights)
    layers: list[CompiledLayer] = []
    epilogues = _layer_epilogues(epilogue, weights, dtype)
    if pattern == "tw":
        cfg = prune_config or TWPruneConfig(granularity=granularity)
        granularity = cfg.granularity
        step = tw_prune_step(score_mats, sparsity, cfg)
        for i, w in enumerate(weights):
            layers.append(
                _tw_layer(
                    w, layer_names[i], cfg, step.col_keeps[i],
                    step.row_masks[i], step.masks[i], placement, i, n, dtype,
                    epilogue=epilogues[i],
                )
            )
        achieved = step.achieved_sparsity
    elif pattern == "dense":
        for i, w in enumerate(weights):
            layers.append(
                CompiledLayer(
                    name=layer_names[i], shape=w.shape, dense=w,
                    mask=np.ones(w.shape, dtype=bool),
                    epilogue=epilogues[i],
                )
            )
        achieved = 0.0
    else:
        pat = make_pattern(pattern, granularity=granularity, **(pattern_kwargs or {}))
        result = pat.prune(score_mats, sparsity)
        for i, w in enumerate(weights):
            layers.append(
                CompiledLayer(
                    name=layer_names[i], shape=w.shape, dense=w,
                    mask=np.asarray(result.masks[i], dtype=bool),
                    epilogue=epilogues[i],
                )
            )
        achieved = result.achieved_sparsity
    return CompiledTWModel(
        layers,
        pattern=pattern,
        sparsity=sparsity,
        granularity=granularity,
        engine=engine,
        placement=placement,
        achieved_sparsity=achieved,
    )


def _compile_named(
    model: str,
    pattern: str,
    sparsity: float,
    granularity: int,
    engine: str,
    placement: Placement,
) -> CompiledTWModel:
    """Shape-table compilation for the paper's full-size models."""
    from repro.experiments.latency import MODEL_SHAPES

    if model not in MODEL_SHAPES:
        raise KeyError(
            f"unknown model {model!r}; expected one of {sorted(MODEL_SHAPES)}"
        )
    if pattern not in _PRICE_AS:
        raise KeyError(
            f"pattern {pattern!r} has no cost model; priceable: {sorted(_PRICE_AS)}"
        )
    shapes = MODEL_SHAPES[model]()
    layers = [
        CompiledLayer(name=s.name or f"gemm{i}", shape=(s.k, s.n))
        for i, s in enumerate(shapes)
    ]
    return CompiledTWModel(
        layers,
        pattern=pattern,
        sparsity=sparsity,
        granularity=granularity,
        engine=engine,
        placement=placement,
        achieved_sparsity=sparsity,
        model_name=model,
    )


@dataclass(frozen=True)
class TuneStage:
    """One prune(+fine-tune) stage of a tuning session.

    ``kind`` is ``"prune"`` for the schedule's stages and ``"overlay"`` for
    the final TEW restore+fine-tune pass; ``metric`` is populated only when
    :func:`tune` was given an ``evaluate=`` callback.
    """

    index: int
    kind: str
    target_sparsity: float
    achieved_sparsity: float
    metric: float | None = None


@dataclass
class TuneResult:
    """Everything a tuning session produced — trajectory, masks, artifact.

    ``compiled`` is the same :class:`CompiledTWModel` artifact
    :func:`compile` returns (built from the *fine-tuned* weights and the
    final stage's masks), so the whole downstream surface —
    ``prune_report()``, ``price()``, ``run()``, ``save()``, ``serve()`` —
    applies unchanged.  For TEW sessions ``compiled`` holds the pure-TW
    part (at the overshoot sparsity ``α + δ``) and ``residuals`` the
    restored elements' *final trained values* in CSC form; :meth:`run`
    executes the paper's two-pass decomposition
    ``A · B_TEW = A · B_TW + A · B_residual``.
    """

    compiled: CompiledTWModel
    pattern: str
    sparsity: float
    granularity: int
    schedule: GradualSchedule
    importance: ImportanceConfig
    history: list[TuneStage]
    masks: list[np.ndarray]
    tew: TEWSolution | None = None
    residuals: list[CSCMatrix] | None = None

    @property
    def achieved_sparsity(self) -> float:
        """Overall sparsity of the effective keep masks (TW ∪ EW for TEW)."""
        return overall_sparsity(self.masks)

    @property
    def n_stages(self) -> int:
        """Stages actually run (schedule stages + the TEW overlay pass)."""
        return len(self.history)

    @property
    def metric(self) -> float | None:
        """Final ``evaluate()`` reading, or ``None`` when no callback ran."""
        return self.history[-1].metric if self.history else None

    def trajectory(self) -> list[dict]:
        """The per-stage sparsity/metric history as plain records.

        JSON-ready (the CLI prints it verbatim under ``--json``); one row
        per stage in execution order.
        """
        return [
            {
                "stage": s.index,
                "kind": s.kind,
                "target_sparsity": s.target_sparsity,
                "achieved_sparsity": round(s.achieved_sparsity, 6),
                "metric": s.metric,
            }
            for s in self.history
        ]

    def run(self, x: np.ndarray) -> np.ndarray:
        """Forward ``x`` through the tuned model.

        Plain sessions delegate to ``compiled.run`` (bit-identical to the
        hand-wired ``TWPruner``/mask-rule chain); TEW sessions add the
        CSC residual pass per layer, exploiting linearity exactly as the
        paper's CUDA-core overlay kernel does (§IV-A).
        """
        if self.residuals is None:
            return self.compiled.run(x)
        a = np.atleast_2d(np.asarray(x))
        n = self.compiled.n_layers
        for i, l in enumerate(self.compiled.layers):
            device = self.compiled.placement.device_for_layer(i, n)
            a = tw_gemm(a, l.tw, plan=l.plans.get(device)) + csc_left_spmm(
                a, self.residuals[i]
            )
        return a

    def save(self, path: str | Path) -> Path:
        """Persist the tuned model via :meth:`CompiledTWModel.save`.

        TW sessions round-trip through ``repro.load`` bit-exactly.  TEW
        sessions refuse (the residual has no ``.npz`` layout yet) rather
        than silently dropping the restored elements; ``result.compiled``
        remains saveable as the pure-TW part if that is what you want.
        """
        if self.residuals is not None:
            raise ValueError(
                "TEW tuning results do not serialize: the EW residual has "
                "no .npz layout yet — result.compiled.save() stores the "
                "pure-TW part alone if that is acceptable"
            )
        return self.compiled.save(path)


def _as_prunable(model_or_adapter, *, data, train) -> PrunableModel:
    """Normalise any accepted tuning source to a :class:`PrunableModel`.

    Accepts a ready adapter (``TrainedModelAdapter``, ``ArrayModel``, or
    anything satisfying the protocol), an ``repro.nn`` module plus
    ``data=``, or raw weight matrices.  Enforces the fine-tuning contract:
    a ``train=`` override is only accepted where real training state
    exists, never silently dropped.
    """
    m = model_or_adapter
    if hasattr(m, "prunable_weights") and hasattr(m, "loss"):
        from repro.nn.trainer import TrainConfig, TrainedModelAdapter

        if data is None:
            raise ValueError(
                "tuning an repro.nn module needs training data: pass "
                "data=<ClassificationSplit> and tune() will build a "
                "TrainedModelAdapter over model.prunable_weights() / "
                "model.loss, or construct the adapter yourself"
            )
        return TrainedModelAdapter(
            m.prunable_weights(), m.loss, data, train or TrainConfig(epochs=1)
        )
    if isinstance(m, PrunableModel):
        if data is not None:
            raise ValueError(
                "data= only applies when tuning an repro.nn module; this "
                "adapter already owns its training data"
            )
        if train is not None:
            setter = getattr(m, "set_finetune_config", None)
            if setter is None:
                hint = (
                    "ArrayModel wraps raw weight stacks whose fine_tune() "
                    "is a documented no-op — drop train= or wrap real "
                    "training state in repro.nn.trainer.TrainedModelAdapter"
                    if isinstance(m, ArrayModel)
                    else f"{type(m).__name__} exposes no "
                    "set_finetune_config(TrainConfig)"
                )
                raise ValueError(f"train= override rejected: {hint}")
            setter(train)
        return m
    weights, _ = _normalize_weights(m, None)
    if train is not None or data is not None:
        raise ValueError(
            "raw weight stacks cannot be fine-tuned: tune() wraps them in "
            "ArrayModel, whose fine_tune() is a documented no-op — drop "
            "train=/data= or adapt real training state via "
            "repro.nn.trainer.TrainedModelAdapter"
        )
    return ArrayModel(weights)


def tune(
    model_or_adapter,
    *,
    pattern: str = "tw",
    sparsity: float = 0.75,
    granularity: int = 128,
    schedule: GradualSchedule | str | None = "gradual",
    n_stages: int | None = None,
    law: str | None = None,
    importance: ImportanceConfig | str | None = "taylor",
    tew: TEWConfig | float | None = None,
    apriori: AprioriConfig | bool = True,
    train=None,
    data=None,
    evaluate: Callable[[], float] | None = None,
    engine: str = "tensor_core",
    placement: Placement | str | None = None,
    devices: Sequence[DeviceSpec] | None = None,
    dtype: np.dtype | type | None = np.float64,
    prune_config: TWPruneConfig | None = None,
    pattern_kwargs: dict | None = None,
    names: Sequence[str] | None = None,
) -> TuneResult:
    """Run the paper's *training-time* pipeline; returns a :class:`TuneResult`.

    Drives Algorithm 1's loop — schedule stage → importance scoring → prune
    → (optional TEW overlay) → mask-constrained fine-tune — and terminates
    in the same :class:`CompiledTWModel` artifact :func:`compile` produces,
    so ``tune(...).compiled.run()`` is bit-identical to the equivalent
    hand-wired ``TWPruner``/``GradualSchedule`` chain (``tests/test_api.py``
    pins this, mirroring the ``compile`` contract).

    Parameters
    ----------
    model_or_adapter:
        A :class:`~repro.core.pruner.PrunableModel` adapter
        (:class:`~repro.nn.trainer.TrainedModelAdapter` for real training
        state, :class:`~repro.core.pruner.ArrayModel` for frozen arrays),
        an ``repro.nn`` module (pass ``data=`` too), or raw 2-D weight
        matrices (wrapped in ``ArrayModel``; no fine-tuning).
    pattern:
        Registry name.  ``tw`` runs Algorithm 1; ``tew`` is sugar for
        ``tw`` plus a default TEW overlay; the mask-rule baselines
        (``ew``/``vw``/``bw``/``nm``) run the same stage loop with their
        own prune rule (the paper's §VII-A comparison methodology).
    sparsity:
        Final overall target ``S``; ignored when ``schedule`` is an
        explicit :class:`GradualSchedule` instance (its ``target`` wins).
    schedule:
        Registry name (``gradual``, ``oneshot``) or instance;
        ``n_stages``/``law`` feed the registry factory when given.
    importance:
        Registry name (``taylor``, ``magnitude``) or
        :class:`ImportanceConfig`.  Taylor degrades to magnitude for
        models without gradients rather than failing.
    tew:
        ``None`` (no overlay), a δ fraction, or a full
        :class:`TEWConfig`.  The prune schedule then overshoots to
        ``min(S + δ, 0.99)`` and the best δ of *pruned* elements are
        restored at their trained values before a final fine-tune (§IV-A).
    apriori:
        ``True`` (default) injects Algorithm 2's EW-informed prior into
        every TW stage; ``False`` disables; an :class:`AprioriConfig`
        customises.  Ignored by the baseline patterns.
    train:
        Per-stage fine-tuning override (``TrainConfig``); only accepted
        where real training state exists.  ``epochs=0`` is well-defined:
        prune-only stages.
    data:
        Training split used to build the adapter when an ``repro.nn``
        module is passed directly.
    evaluate:
        Optional zero-argument metric callback (e.g.
        ``bundle.evaluate``); called after every stage to populate the
        trajectory.  Must not perturb training state.
    engine / placement / devices / dtype / names:
        Forwarded to the compilation step (same semantics as
        :func:`compile`).
    prune_config:
        Full :class:`TWPruneConfig` override (TW only; ``granularity`` is
        ignored when given).
    pattern_kwargs:
        Extra registry-factory arguments for baseline patterns
        (``vector_size``, ``block_shape``, ``n``/``m``).
    """
    import dataclasses

    placement = resolve_placement(placement, devices)
    engine = resolve_engine(engine)

    tew_cfg: TEWConfig | None
    if isinstance(tew, TEWConfig):
        tew_cfg = tew
    elif tew is not None:
        tew_cfg = TEWConfig(delta=float(tew))
    else:
        tew_cfg = None
    if pattern == "tew":
        pattern = "tw"
        if tew_cfg is None:
            tew_cfg = TEWConfig()
    elif pattern == "dense":
        raise ValueError(
            "nothing to tune for the dense baseline — "
            "repro.compile(..., pattern='dense') prices and executes it "
            "directly"
        )
    else:
        pattern = PATTERNS.canonical(pattern)
    if tew_cfg is not None and pattern != "tw":
        raise ValueError(
            f"the TEW overlay composes with the tw pattern only, "
            f"got pattern={pattern!r}"
        )

    imp_cfg = resolve_importance(importance)
    sched = resolve_schedule(schedule, target=sparsity, n_stages=n_stages, law=law)
    sparsity = sched.target
    model = _as_prunable(model_or_adapter, data=data, train=train)

    history: list[TuneStage] = []

    def _record(kind: str, target: float, achieved: float) -> None:
        history.append(
            TuneStage(
                index=len(history),
                kind=kind,
                target_sparsity=target,
                achieved_sparsity=achieved,
                metric=evaluate() if evaluate is not None else None,
            )
        )

    tew_sol: TEWSolution | None = None
    residuals: list[CSCMatrix] | None = None
    if pattern == "tw":
        cfg = prune_config or TWPruneConfig(granularity=granularity)
        granularity = cfg.granularity
        if apriori is True:
            apriori_cfg: AprioriConfig | None = AprioriConfig()
        elif isinstance(apriori, AprioriConfig):
            apriori_cfg = apriori
        else:
            apriori_cfg = None

        prune_sched = sched
        snapshot: list[np.ndarray] | None = None
        dense_scores: list[np.ndarray] | None = None
        if tew_cfg is not None:
            # TW to S + δ, then restore the best δ fraction (§IV-A).
            # Restore candidates rank by the *dense* model's importance,
            # captured before pruning — pruned weights score zero after.
            overshoot = min(sparsity + tew_cfg.delta, 0.99)
            prune_sched = dataclasses.replace(sched, target=overshoot)
            snapshot = [w.copy() for w in model.weight_matrices()]
            dense_scores = stage_scores(model, imp_cfg)

        pruner = TWPruner(cfg, prune_sched, imp_cfg, apriori_cfg)
        step: TWStepResult | None = None
        for target, step in pruner.prune_stages(model):
            _record("prune", target, step.achieved_sparsity)
        assert step is not None, "schedule produced no stages"
        masks = [np.asarray(m, dtype=bool) for m in step.masks]
        achieved = step.achieved_sparsity

        if tew_cfg is not None:
            tew_sol = tew_overlay(snapshot, dense_scores, step.masks, tew_cfg)
            # write the restored elements' trained values back before
            # masking — the overlay *revives* weights, it does not merely
            # unmask zeros (weight_matrices() returns live views)
            for w, saved, ew in zip(
                model.weight_matrices(), snapshot, tew_sol.ew_masks
            ):
                w[ew] = saved[ew]
            model.apply_masks(tew_sol.masks)
            model.fine_tune()
            masks = tew_sol.masks
            achieved = tew_sol.overall_sparsity
            _record("overlay", sparsity, achieved)

        final_weights = [np.array(w) for w in model.weight_matrices()]
        _, layer_names = _normalize_weights(final_weights, names)
        n = len(final_weights)
        layers = [
            _tw_layer(
                w, layer_names[i], cfg, step.col_keeps[i],
                step.row_masks[i], step.masks[i], placement, i, n, dtype,
            )
            for i, w in enumerate(final_weights)
        ]
        compiled = CompiledTWModel(
            layers,
            pattern="tw",
            sparsity=prune_sched.target,
            granularity=granularity,
            engine=engine,
            placement=placement,
            achieved_sparsity=step.achieved_sparsity,
        )
        if tew_sol is not None:
            residuals = [
                CSCMatrix.from_dense(np.where(ew, w, 0.0))
                for w, ew in zip(final_weights, tew_sol.ew_masks)
            ]
            # the overlay solution was built from the pre-fine-tune snapshot;
            # refresh its execution payload to the final trained values so
            # result.tew.residuals and result.residuals agree (the masks are
            # unchanged by fine-tuning, only the restored values moved)
            tew_sol.residuals = residuals
    else:
        # baseline mask rules through the shared stage loop (§VII-A: every
        # pattern is compared under the same multi-stage methodology)
        pat = make_pattern(pattern, granularity=granularity, **(pattern_kwargs or {}))
        result = None
        for target in sched.stages():
            scores = stage_scores(model, imp_cfg)
            result = pat.prune(scores, target)
            model.apply_masks(result.masks)
            model.fine_tune()
            _record("prune", target, result.achieved_sparsity)
        assert result is not None, "schedule produced no stages"
        masks = [np.asarray(m, dtype=bool) for m in result.masks]
        achieved = result.achieved_sparsity
        final_weights = [np.array(w) for w in model.weight_matrices()]
        _, layer_names = _normalize_weights(final_weights, names)
        layers = [
            CompiledLayer(
                name=layer_names[i], shape=w.shape, dense=w, mask=masks[i]
            )
            for i, w in enumerate(final_weights)
        ]
        compiled = CompiledTWModel(
            layers,
            pattern=pattern,
            sparsity=sparsity,
            granularity=granularity,
            engine=engine,
            placement=placement,
            achieved_sparsity=achieved,
        )

    return TuneResult(
        compiled=compiled,
        pattern="tew" if tew_cfg is not None else pattern,
        sparsity=sparsity,
        granularity=granularity,
        schedule=sched,
        importance=imp_cfg,
        history=history,
        masks=masks,
        tew=tew_sol,
        residuals=residuals,
    )


def load(path: str | Path) -> CompiledTWModel:
    """Load a compiled model saved by :meth:`CompiledTWModel.save`."""
    return CompiledTWModel.load(path)


def demo_layer_stack(
    model: str = "bert",
    *,
    scale: int = 1,
    blocks: int = 2,
    seed: int = 0,
    dtype: np.dtype | type = np.float64,
) -> tuple[list[np.ndarray], list[str]]:
    """A chained random weight stack at a named model's GEMM geometry.

    Serving needs layers whose ``N`` feeds the next layer's ``K``; this
    builds the natural chained sub-stack of each paper model — the
    BERT-base encoder block sequence (4 attention projections + FFN
    expand/contract per block), the VGG-16 FC head, or the NMT
    attention/projection chain — scaled down by ``scale`` for quick demos.
    Returns ``(weights, names)`` ready for :func:`compile`.
    """
    if scale <= 0 or blocks <= 0:
        raise ValueError("scale and blocks must be positive")
    rng = np.random.default_rng(seed)

    def w(k: int, n: int) -> np.ndarray:
        return rng.standard_normal((max(1, k), max(1, n))).astype(dtype)

    weights: list[np.ndarray] = []
    names: list[str] = []
    if model == "bert":
        hidden, ffn = 768 // scale, 3072 // scale
        for b in range(blocks):
            for p in ("q", "k", "v", "o"):
                weights.append(w(hidden, hidden))
                names.append(f"block{b}.attn-{p}")
            weights.append(w(hidden, ffn))
            names.append(f"block{b}.ffn-1")
            weights.append(w(ffn, hidden))
            names.append(f"block{b}.ffn-2")
    elif model == "vgg":
        dims = [512 * 7 * 7 // scale, 4096 // scale, 4096 // scale, 1000 // scale]
        for i, (k, n) in enumerate(zip(dims, dims[1:])):
            weights.append(w(k, n))
            names.append(f"fc{i + 1}")
    elif model == "nmt":
        hidden, vocab = 512 // scale, 8000 // scale
        weights = [w(hidden, hidden), w(hidden, hidden), w(hidden, vocab)]
        names = ["attention", "combine", "vocab-proj"]
    else:
        raise KeyError(f"unknown model {model!r}; expected bert, vgg or nmt")
    return weights, names
