"""One front door for the paper's pipeline: :func:`compile`.

The reproduction's contribution is a *pipeline* — tile-wise prune → compact
TW format → batching/stream plan → batched GEMM execution — and this module
is its single entry point.  Instead of hand-wiring ``tw_prune_step`` →
``TiledTWMatrix.from_masks`` → ``build_execution_plan`` → ``tw_gemm`` at
every call site, callers write::

    import repro

    model = repro.compile(weights, pattern="tw", sparsity=0.75,
                          granularity=128, engine="tensor_core")
    model.prune_report()      # what the pruner kept
    model.price(m=8192)       # cost-model latency vs the dense baseline
    y = model.run(x)          # batched TW forward (bit-identical to the
                              # hand-wired pipeline)
    model.save("model.npz")   # offline artifact (repro.load round-trips)
    server = model.serve()    # warm TWModelServer, caches pre-seeded

Patterns (``tw``, ``ew``, ``vw``, ``bw``, ``nm``) and engines
(``tensor_core``, ``cuda_core``) are resolved through the string registries
in :mod:`repro.patterns.registry`; multi-device placement (``single``,
``replicated``, ``layer_sharded``) through
:mod:`repro.runtime.placement` — every new pattern/engine/placement is a
registry entry, not a new code path.

Two compilation sources:

- **weight matrices** (arrays, or an ``repro.nn`` module) — the full
  pipeline runs: pruning, compaction, per-device plans, execution;
- **a model name** (``"bert"``, ``"vgg"``, ``"nmt"``) — the paper's
  full-size GEMM shape tables are compiled for *pricing only* (the cost
  model needs no weights); ``run``/``serve``/``save`` explain what to pass
  instead.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.importance import magnitude_score
from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.formats.tiled import TiledTWMatrix
from repro.gpu.device import DeviceSpec
from repro.gpu.tw_kernel import TWShapeStats
from repro.kernels.masked import tw_gemm
from repro.models.registry import GemmShape
from repro.patterns.registry import PATTERNS, make_pattern, resolve_engine
from repro.runtime.engine import EndToEndReport, EngineConfig, InferenceEngine, LayerPlan
from repro.runtime.placement import Placement, resolve_placement
from repro.runtime.scheduler import ExecutionPlan, build_execution_plan
from repro.runtime.server import ServerConfig, TWModelServer, weight_fingerprint

__all__ = [
    "compile",
    "load",
    "CompiledTWModel",
    "CompiledLayer",
    "PriceReport",
    "demo_layer_stack",
]

#: patterns the cost model can price directly (LayerPlan vocabulary);
#: ``nm`` is priced as ``vw`` — both need hardware support and fall back
#: to cuSparse-on-CUDA-cores in the simulator
_PRICE_AS = {
    "tw": "tw",
    "tew": "tew",
    "ew": "ew",
    "vw": "vw",
    "bw": "bw",
    "nm": "vw",
    "dense": "dense",
}

#: compile-time strings that are not mask registry entries but are still
#: accepted: the dense baseline, and TEW which only the cost model knows
#: (the mask-level overlay needs the multi-stage pipeline in
#: repro.experiments.accuracy)
_NON_REGISTRY_PATTERNS = ("dense", "tew")


@dataclass(frozen=True)
class CompiledLayer:
    """One layer of a compiled model: formats, plans, cache identity.

    For TW compilations every field is populated; for mask-only patterns
    (``ew``/``vw``/``bw``/``nm``) only ``dense`` + ``mask`` are (execution
    falls back to masked-dense GEMM); for shape-only compilations only
    ``shape`` is.
    """

    name: str
    shape: tuple[int, int]
    dense: np.ndarray | None = None
    mask: np.ndarray | None = None
    col_keep: np.ndarray | None = None
    row_masks: tuple[np.ndarray, ...] = ()
    tw: TiledTWMatrix | None = None
    plans: dict[DeviceSpec, ExecutionPlan] = field(default_factory=dict)
    fingerprint: str = ""

    @property
    def sparsity(self) -> float:
        """Element sparsity of this layer after pruning."""
        if self.tw is not None:
            return self.tw.sparsity
        if self.mask is not None:
            return 1.0 - float(np.asarray(self.mask).mean())
        return 0.0

    def masked_dense(self) -> np.ndarray:
        """The mask-expanded weight, memoised (mask-only execution path).

        Both operands are frozen, so the product is computed once and
        parked in the instance ``__dict__`` — the same memo idiom the
        kernels use for group operands.
        """
        hit = self.__dict__.get("_masked_dense")
        if hit is None:
            hit = self.dense * self.mask
            object.__setattr__(self, "_masked_dense", hit)
        return hit


@dataclass(frozen=True)
class PriceReport:
    """Cost-model pricing of a compiled model vs its dense baseline.

    ``gemm_speedup`` is the paper's main reported quantity;
    ``end_to_end`` is populated for named-model compilations (where the
    non-GEMM Amdahl fraction is known) and ``None`` for raw weight stacks.
    """

    label: str
    pattern: str
    engine: str
    m: int
    sparse_gemm_us: float
    dense_gemm_us: float
    end_to_end: EndToEndReport | None = None

    @property
    def gemm_speedup(self) -> float:
        """Dense-baseline GEMM time over sparse GEMM time."""
        return self.dense_gemm_us / self.sparse_gemm_us if self.sparse_gemm_us > 0 else 0.0


class CompiledTWModel:
    """A pruned, compacted, planned model — the pipeline's one artifact.

    Owns per-layer compact formats and per-device
    :class:`~repro.runtime.scheduler.ExecutionPlan`\\ s, so every consumer
    (forward execution, cost-model pricing, serialization, serving) reads
    the *same* compiled state instead of re-running parts of the pipeline.
    """

    def __init__(
        self,
        layers: list[CompiledLayer],
        *,
        pattern: str,
        sparsity: float,
        granularity: int,
        engine: str,
        placement: Placement,
        achieved_sparsity: float | None = None,
        model_name: str | None = None,
        price_shapes: list[GemmShape] | None = None,
    ) -> None:
        self.layers = layers
        self.pattern = pattern
        self.sparsity = sparsity
        self.granularity = granularity
        self.engine = engine
        self.placement = placement
        self.model_name = model_name
        self._price_shapes = price_shapes
        if achieved_sparsity is None:
            total = sum(l.shape[0] * l.shape[1] for l in layers) or 1
            kept = sum((1.0 - l.sparsity) * l.shape[0] * l.shape[1] for l in layers)
            achieved_sparsity = 1.0 - kept / total
        self.achieved_sparsity = achieved_sparsity

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_layers(self) -> int:
        """Compiled layers."""
        return len(self.layers)

    @property
    def executable(self) -> bool:
        """Whether :meth:`run` can execute (weights were compiled)."""
        return bool(self.layers) and all(
            l.tw is not None or (l.dense is not None and l.mask is not None)
            for l in self.layers
        )

    @property
    def dtype(self) -> np.dtype:
        """Payload dtype of the compiled formats."""
        for l in self.layers:
            if l.tw is not None:
                return l.tw.dtype
            if l.dense is not None:
                return l.dense.dtype
        return np.dtype(np.float64)

    def _require_weights(self, what: str) -> None:
        if not self.executable:
            raise ValueError(
                f"cannot {what}: this model was compiled from "
                f"{self.model_name or 'shapes'!r} shapes only — "
                "pass weight matrices (or an repro.nn module) to repro.compile() "
                "to get an executable model"
            )

    def shard_layout(self) -> list[str]:
        """Device slot (``name#index``) owning each layer under the placement."""
        return self.placement.shard_labels(self.n_layers)

    def prune_report(self) -> dict:
        """What pruning kept: per-layer and overall sparsity, tile geometry."""
        self._require_weights("report pruning")
        rows = []
        for l in self.layers:
            row = {
                "name": l.name,
                "shape": list(l.shape),
                "sparsity": round(l.sparsity, 6),
            }
            if l.tw is not None:
                row.update(
                    tiles=l.tw.n_tiles,
                    kept_columns=l.tw.kept_columns,
                    load_imbalance=round(l.tw.load_imbalance(), 4),
                    memory_bytes=l.tw.memory_bytes(),
                )
            rows.append(row)
        return {
            "pattern": self.pattern,
            "granularity": self.granularity,
            "target_sparsity": self.sparsity,
            "achieved_sparsity": round(self.achieved_sparsity, 6),
            "placement": {
                "kind": self.placement.kind,
                "devices": [d.name for d in self.placement.devices],
            },
            "layers": rows,
        }

    # ------------------------------------------------------------------ #
    # pricing (cost model)
    # ------------------------------------------------------------------ #
    def price(self, m: int = 8192, infer: InferenceEngine | None = None) -> PriceReport:
        """Cost-model latency of this model vs its dense baseline.

        Named-model compilations price the paper's full-size shape tables
        (GEMM-only speedup + the Fig. 15 end-to-end breakdown); weight
        compilations price each layer at ``m`` activation rows using the
        *real* compiled tile geometry (``TWShapeStats.from_matrix``), not a
        synthetic sparsity model.
        """
        if self.model_name is not None and self._price_shapes is None:
            # named-model path: delegate to the latency experiment, which
            # shares dense-baseline memos across sweeps
            from repro.experiments.latency import end_to_end_report, gemm_speedup

            price_pattern = _PRICE_AS[self.pattern]
            speedup = gemm_speedup(
                self.model_name, price_pattern, self.sparsity,
                engine=self.engine, granularity=self.granularity, infer=infer,
            )
            rep = end_to_end_report(
                self.model_name, price_pattern, self.sparsity,
                EngineConfig(engine=self.engine),
                granularity=self.granularity, infer=infer,
            )
            return PriceReport(
                label=self.model_name,
                pattern=self.pattern,
                engine=self.engine,
                m=0,
                sparse_gemm_us=rep.gemm_us,
                dense_gemm_us=rep.gemm_us * speedup,
                end_to_end=rep,
            )
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        from repro.experiments.latency import baseline_engine_config

        price_pattern = _PRICE_AS[self.pattern]
        infer = infer or InferenceEngine(device=self.placement.primary)
        config = EngineConfig(engine=self.engine)
        baseline_cfg = baseline_engine_config(price_pattern, config)
        sparse_us = dense_us = 0.0
        for l in self.layers:
            shape = GemmShape(m, l.shape[0], l.shape[1], name=l.name)
            plan = LayerPlan(
                shape,
                pattern=price_pattern,
                sparsity=min(l.sparsity, 1.0),
                granularity=self.granularity,
                tw_stats=TWShapeStats.from_matrix(l.tw) if l.tw is not None else None,
            )
            if price_pattern == "dense":
                sparse_us += infer.gemm_cost(LayerPlan(shape), config).total_us
            else:
                sparse_us += infer.gemm_cost(plan, config).total_us
            dense_us += infer.gemm_cost(LayerPlan(shape), baseline_cfg).total_us
        return PriceReport(
            label=self.model_name or f"{self.n_layers}-layer stack",
            pattern=self.pattern,
            engine=self.engine,
            m=m,
            sparse_gemm_us=sparse_us,
            dense_gemm_us=dense_us,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """Forward ``x`` through the compiled layer stack.

        TW layers execute as width-grouped batched GEMMs replaying the
        compiled per-device plans (bit-identical to the hand-wired
        ``tw_prune → from_masks → build_execution_plan → tw_gemm``
        pipeline); mask-only patterns execute dense GEMM against the
        mask-expanded weights.
        """
        self._require_weights("run")
        a = np.atleast_2d(np.asarray(x))
        if self.layers and a.shape[1] != self.layers[0].shape[0]:
            raise ValueError(
                f"input K={a.shape[1]} != model K={self.layers[0].shape[0]}"
            )
        n = self.n_layers
        for i, l in enumerate(self.layers):
            if i and l.shape[0] != self.layers[i - 1].shape[1]:
                raise ValueError(
                    f"layer {i} K={l.shape[0]} does not chain onto layer "
                    f"{i - 1} N={self.layers[i - 1].shape[1]}"
                )
            if l.tw is not None:
                device = self.placement.device_for_layer(i, n)
                a = tw_gemm(a, l.tw, plan=l.plans.get(device))
            else:
                a = a @ l.masked_dense()
        return a

    def serve(
        self,
        config: ServerConfig | None = None,
        *,
        executor: str | None = None,
        workers: int | None = None,
        pace: float | None = None,
    ) -> TWModelServer:
        """A :class:`TWModelServer` over this model, caches pre-seeded.

        With no ``config``, the server inherits the compiled granularity,
        payload dtype and placement.  The compiled formats and per-device
        plans are adopted into the server's caches (``preload``), so the
        first request is already warm whenever the config matches.

        ``executor``/``workers``/``pace`` override the corresponding
        :class:`ServerConfig` fields (with or without an explicit
        ``config``): ``executor="threaded"`` overlaps the placement's
        device slots in wall-time — outputs stay bit-identical to
        ``inline`` — and ``pace`` turns on simulated-device pacing.
        """
        self._require_weights("serve")
        if any(l.tw is None for l in self.layers):
            raise ValueError(
                f"serving requires the TW pattern; this model was compiled "
                f"with pattern={self.pattern!r}"
            )
        if config is None:
            config = ServerConfig(
                granularity=self.granularity,
                dtype=str(self.dtype),
                placement=self.placement,
            )
        overrides = {
            k: v
            for k, v in (("executor", executor), ("workers", workers), ("pace", pace))
            if v is not None
        }
        if overrides:
            import dataclasses

            config = dataclasses.replace(config, **overrides)
        server = TWModelServer(config)
        for i, l in enumerate(self.layers):
            server.add_layer(l.dense, l.col_keep, list(l.row_masks))
            server.preload(i, l.tw, l.plans)
        return server

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the compiled model to one ``.npz`` (``repro.load`` reads it).

        Stores the compact tile payloads, pruning masks and compilation
        metadata — the offline artifact of the paper's §VI pre-processing.
        Plans are rebuilt deterministically at load, so they are not stored.
        """
        from repro.formats.io import save_compiled_arrays

        self._require_weights("save")
        if any(l.tw is None for l in self.layers):
            raise ValueError(
                f"only TW compilations serialize; this model used {self.pattern!r}"
            )
        meta = {
            "pattern": self.pattern,
            "sparsity": self.sparsity,
            "achieved_sparsity": self.achieved_sparsity,
            "granularity": self.granularity,
            "engine": self.engine,
            "placement_kind": self.placement.kind,
            "devices": [_device_dict(d) for d in self.placement.devices],
            "layer_names": [l.name for l in self.layers],
        }
        layers = [
            {"tw": l.tw, "col_keep": l.col_keep, "row_masks": list(l.row_masks)}
            for l in self.layers
        ]
        return save_compiled_arrays(path, meta, layers)

    @classmethod
    def load(cls, path: str | Path) -> "CompiledTWModel":
        """Reconstruct a compiled model saved with :meth:`save`.

        Tile payloads round-trip bit-exactly; execution plans are rebuilt
        (deterministic), and the dense view is re-expanded from the tiles
        (values at pruned positions are zero — they never participate in
        execution).
        """
        from repro.formats.io import load_compiled_arrays

        meta, raw_layers = load_compiled_arrays(path)
        placement = Placement(
            meta["placement_kind"],
            tuple(DeviceSpec(**d) for d in meta["devices"]),
        )
        layers = []
        n = len(raw_layers)
        for i, raw in enumerate(raw_layers):
            tw: TiledTWMatrix = raw["tw"]
            dense = tw.to_dense()
            layers.append(
                CompiledLayer(
                    name=meta["layer_names"][i],
                    shape=tw.shape,
                    dense=dense,
                    col_keep=raw["col_keep"],
                    row_masks=tuple(raw["row_masks"]),
                    tw=tw,
                    plans=_build_plans(tw, placement, i, n),
                    fingerprint=weight_fingerprint(
                        dense, raw["col_keep"], list(raw["row_masks"])
                    ),
                )
            )
        return cls(
            layers,
            pattern=meta["pattern"],
            sparsity=meta["sparsity"],
            granularity=meta["granularity"],
            engine=meta["engine"],
            placement=placement,
            achieved_sparsity=meta["achieved_sparsity"],
        )


def _device_dict(d: DeviceSpec) -> dict:
    import dataclasses

    return dataclasses.asdict(d)


def _build_plans(
    tw: TiledTWMatrix, placement: Placement, layer: int, n_layers: int
) -> dict[DeviceSpec, ExecutionPlan]:
    """Execution plans for every device this layer may run on."""
    devices = placement.plan_devices(n_layers)[layer] if n_layers else ()
    return {d: build_execution_plan(tw, d) for d in devices}


def _normalize_weights(
    model_or_weights, names: Sequence[str] | None
) -> tuple[list[np.ndarray], list[str]]:
    """Weight matrices + layer names from any accepted model source."""
    if hasattr(model_or_weights, "prunable_weights"):
        weights = [np.asarray(t.data) for t in model_or_weights.prunable_weights()]
    elif isinstance(model_or_weights, np.ndarray):
        weights = [model_or_weights] if model_or_weights.ndim == 2 else list(model_or_weights)
    else:
        weights = [np.asarray(w) for w in model_or_weights]
    if not weights:
        raise ValueError("no weight matrices to compile")
    for i, w in enumerate(weights):
        if w.ndim != 2:
            raise ValueError(f"weight {i} must be 2-D, got ndim={w.ndim}")
    if names is None:
        names = [f"layer{i}" for i in range(len(weights))]
    elif len(names) != len(weights):
        raise ValueError(f"{len(names)} names for {len(weights)} weights")
    return weights, list(names)


def compile(
    model_or_weights,
    *,
    pattern: str = "tw",
    sparsity: float = 0.75,
    granularity: int = 128,
    engine: str = "tensor_core",
    placement: Placement | str | None = None,
    devices: Sequence[DeviceSpec] | None = None,
    dtype: np.dtype | type | None = np.float64,
    scores: Sequence[np.ndarray] | None = None,
    prune_config: TWPruneConfig | None = None,
    pattern_kwargs: dict | None = None,
    names: Sequence[str] | None = None,
) -> CompiledTWModel:
    """Run the paper's pipeline end to end; returns a :class:`CompiledTWModel`.

    Parameters
    ----------
    model_or_weights:
        A 2-D array, a sequence of 2-D arrays (a chained layer stack), an
        ``repro.nn`` module exposing ``prunable_weights()``, or a model
        name string (``"bert"``/``"vgg"``/``"nmt"`` — shape tables, priced
        only).
    pattern:
        Registry name (``tw``, ``ew``, ``vw``, ``bw``, ``nm``; aliases
        accepted) or ``"dense"`` for the unpruned baseline.
    sparsity:
        Overall weight-sparsity target.
    granularity:
        TW tile width ``G``.
    engine:
        Registry name (``tensor_core``/``tc``, ``cuda_core``/``cc``).
    placement:
        A :class:`~repro.runtime.placement.Placement`, a kind string
        (combined with ``devices``), or ``None`` for single-device.
    dtype:
        Compact payload dtype (``None`` keeps the weights' own dtype).
    scores:
        Element importance scores per weight; defaults to magnitude.
    prune_config:
        Full :class:`TWPruneConfig` override (TW only; ``granularity`` is
        ignored when given).
    pattern_kwargs:
        Extra registry-factory arguments (``vector_size``, ``block_shape``,
        ``n``/``m``).
    names:
        Layer names for reports.
    """
    placement = resolve_placement(placement, devices)
    engine = resolve_engine(engine)
    if pattern not in _NON_REGISTRY_PATTERNS:
        pattern = PATTERNS.canonical(pattern)

    if isinstance(model_or_weights, str):
        # price-only compilations admit the closed interval: the cost
        # model can price sparsity 1.0, only *pruning* needs headroom
        if not (0.0 <= sparsity <= 1.0):
            raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
        return _compile_named(
            model_or_weights, pattern, sparsity, granularity, engine, placement
        )
    if not (0.0 <= sparsity < 1.0):
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if pattern == "tew":
        raise ValueError(
            "tew is price-only at compile time: the mask-level TEW overlay "
            "needs the multi-stage pipeline "
            "(repro.experiments.accuracy.prune_and_evaluate)"
        )

    weights, layer_names = _normalize_weights(model_or_weights, names)
    score_mats = (
        [np.asarray(s, dtype=np.float64) for s in scores]
        if scores is not None
        else [magnitude_score(w) for w in weights]
    )
    if len(score_mats) != len(weights):
        raise ValueError(f"{len(score_mats)} score matrices for {len(weights)} weights")

    n = len(weights)
    layers: list[CompiledLayer] = []
    if pattern == "tw":
        cfg = prune_config or TWPruneConfig(granularity=granularity)
        granularity = cfg.granularity
        step = tw_prune_step(score_mats, sparsity, cfg)
        for i, w in enumerate(weights):
            tw = TiledTWMatrix.from_masks(
                w, cfg.granularity, step.col_keeps[i], step.row_masks[i],
                reorganize=cfg.reorganize, dtype=dtype,
            )
            layers.append(
                CompiledLayer(
                    name=layer_names[i],
                    shape=tw.shape,
                    dense=w,
                    mask=step.masks[i],
                    col_keep=step.col_keeps[i],
                    row_masks=tuple(step.row_masks[i]),
                    tw=tw,
                    plans=_build_plans(tw, placement, i, n),
                    fingerprint=weight_fingerprint(
                        w, step.col_keeps[i], step.row_masks[i]
                    ),
                )
            )
        achieved = step.achieved_sparsity
    elif pattern == "dense":
        for i, w in enumerate(weights):
            layers.append(
                CompiledLayer(
                    name=layer_names[i], shape=w.shape, dense=w,
                    mask=np.ones(w.shape, dtype=bool),
                )
            )
        achieved = 0.0
    else:
        pat = make_pattern(pattern, granularity=granularity, **(pattern_kwargs or {}))
        result = pat.prune(score_mats, sparsity)
        for i, w in enumerate(weights):
            layers.append(
                CompiledLayer(
                    name=layer_names[i], shape=w.shape, dense=w,
                    mask=np.asarray(result.masks[i], dtype=bool),
                )
            )
        achieved = result.achieved_sparsity
    return CompiledTWModel(
        layers,
        pattern=pattern,
        sparsity=sparsity,
        granularity=granularity,
        engine=engine,
        placement=placement,
        achieved_sparsity=achieved,
    )


def _compile_named(
    model: str,
    pattern: str,
    sparsity: float,
    granularity: int,
    engine: str,
    placement: Placement,
) -> CompiledTWModel:
    """Shape-table compilation for the paper's full-size models."""
    from repro.experiments.latency import MODEL_SHAPES

    if model not in MODEL_SHAPES:
        raise KeyError(
            f"unknown model {model!r}; expected one of {sorted(MODEL_SHAPES)}"
        )
    if pattern not in _PRICE_AS:
        raise KeyError(
            f"pattern {pattern!r} has no cost model; priceable: {sorted(_PRICE_AS)}"
        )
    shapes = MODEL_SHAPES[model]()
    layers = [
        CompiledLayer(name=s.name or f"gemm{i}", shape=(s.k, s.n))
        for i, s in enumerate(shapes)
    ]
    return CompiledTWModel(
        layers,
        pattern=pattern,
        sparsity=sparsity,
        granularity=granularity,
        engine=engine,
        placement=placement,
        achieved_sparsity=sparsity,
        model_name=model,
    )


def load(path: str | Path) -> CompiledTWModel:
    """Load a compiled model saved by :meth:`CompiledTWModel.save`."""
    return CompiledTWModel.load(path)


def demo_layer_stack(
    model: str = "bert",
    *,
    scale: int = 1,
    blocks: int = 2,
    seed: int = 0,
    dtype: np.dtype | type = np.float64,
) -> tuple[list[np.ndarray], list[str]]:
    """A chained random weight stack at a named model's GEMM geometry.

    Serving needs layers whose ``N`` feeds the next layer's ``K``; this
    builds the natural chained sub-stack of each paper model — the
    BERT-base encoder block sequence (4 attention projections + FFN
    expand/contract per block), the VGG-16 FC head, or the NMT
    attention/projection chain — scaled down by ``scale`` for quick demos.
    Returns ``(weights, names)`` ready for :func:`compile`.
    """
    if scale <= 0 or blocks <= 0:
        raise ValueError("scale and blocks must be positive")
    rng = np.random.default_rng(seed)

    def w(k: int, n: int) -> np.ndarray:
        return rng.standard_normal((max(1, k), max(1, n))).astype(dtype)

    weights: list[np.ndarray] = []
    names: list[str] = []
    if model == "bert":
        hidden, ffn = 768 // scale, 3072 // scale
        for b in range(blocks):
            for p in ("q", "k", "v", "o"):
                weights.append(w(hidden, hidden))
                names.append(f"block{b}.attn-{p}")
            weights.append(w(hidden, ffn))
            names.append(f"block{b}.ffn-1")
            weights.append(w(ffn, hidden))
            names.append(f"block{b}.ffn-2")
    elif model == "vgg":
        dims = [512 * 7 * 7 // scale, 4096 // scale, 4096 // scale, 1000 // scale]
        for i, (k, n) in enumerate(zip(dims, dims[1:])):
            weights.append(w(k, n))
            names.append(f"fc{i + 1}")
    elif model == "nmt":
        hidden, vocab = 512 // scale, 8000 // scale
        weights = [w(hidden, hidden), w(hidden, hidden), w(hidden, vocab)]
        names = ["attention", "combine", "vocab-proj"]
    else:
        raise KeyError(f"unknown model {model!r}; expected bert, vgg or nmt")
    return weights, names
