"""Tile-wise sparsity (SC 2020) reproduction — grown into a serving stack.

Quickstart — one front door
---------------------------
The paper's pipeline (tile-wise prune → compact TW format → batching/stream
plan → batched GEMM execution) is exposed as a single call::

    import numpy as np, repro

    rng = np.random.default_rng(0)
    weights = [rng.standard_normal((256, 256)) for _ in range(3)]

    model = repro.compile(weights, pattern="tw", sparsity=0.75, granularity=64)
    model.prune_report()                  # achieved sparsity, tile geometry
    model.price(m=4096).gemm_speedup      # cost-model latency vs dense
    y = model.run(rng.standard_normal((8, 256)))   # batched TW forward
    model.save("model.npz")               # offline artifact (repro.load)
    server = model.serve()                # warm TWModelServer

Multi-device placement (the serving scale-out axis)::

    from repro.gpu.device import V100
    from repro.runtime.placement import Placement

    sharded = repro.compile(
        weights, placement=Placement("layer_sharded", (V100, V100)))
    server = sharded.serve()              # waves flow shard to shard

Training-time pruning (the paper's accuracy procedure) has its own front
door, terminating in the same compiled artifact::

    result = repro.tune(adapter, pattern="tw", sparsity=0.75,
                        schedule="gradual", n_stages=4, tew=0.05)
    result.trajectory()                   # per-stage sparsity / metric
    server = result.compiled.serve()      # tune → compile → serve

Patterns (``tw ew vw bw nm``), engines (``tensor_core cuda_core``),
placements (``single replicated layer_sharded``), schedules
(``gradual oneshot``) and importance metrics (``taylor magnitude``) are
string-registry entries — see :mod:`repro.patterns.registry`,
:mod:`repro.runtime.placement`, :mod:`repro.core.schedule` and
:mod:`repro.core.importance`.  The pieces the facade composes remain
importable for research use: :mod:`repro.core` (Algorithm 1),
:mod:`repro.formats` (compact layouts), :mod:`repro.kernels` (functional
GEMMs), :mod:`repro.gpu` (cost models), :mod:`repro.runtime` (plans +
serving), :mod:`repro.experiments` (accuracy/latency pipelines).

The CLI mirrors the facade:
``python -m repro {prune,tune,latency,sweep,serve,info}``.
"""

__version__ = "0.3.0"

#: lazily-resolved public surface → defining module (PEP 562); keeps
#: ``import repro`` free of numpy-heavy imports until an attribute is used
_EXPORTS = {
    "compile": "repro.api",
    "tune": "repro.api",
    "load": "repro.api",
    "CompiledTWModel": "repro.api",
    "CompiledLayer": "repro.api",
    "PriceReport": "repro.api",
    "TuneResult": "repro.api",
    "TuneStage": "repro.api",
    "Placement": "repro.runtime.placement",
    "TWModelServer": "repro.runtime.server",
    "ServerConfig": "repro.runtime.server",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
