"""Command-line interface over the one front door (:func:`repro.compile`).

Usage (``python -m repro <command> ...``):

- ``prune``   — tile-wise-prune a weight matrix (``.npy``) and save the
  compiled TW model (``.npz``, read back by ``repro.load``) plus sparsity
  statistics;
- ``tune``    — train one of the paper's Mini* tasks dense, then run the
  training-time pipeline (``repro.tune``: gradual schedule → importance →
  prune → optional TEW overlay → fine-tune) and print the per-stage
  sparsity/metric trajectory;
- ``latency`` — price a (model, pattern, sparsity) combination on the
  simulated V100, GEMM-only and end-to-end;
- ``sweep``   — print a speedup-vs-sparsity table for one pattern;
- ``serve``   — stand up a :class:`~repro.runtime.server.TWModelServer`
  over a demo weight stack, optionally sharded/replicated across devices
  (``--executor threaded`` overlaps the device slots in wall-time), and
  report throughput plus measured parallel efficiency;
- ``info``    — show the device spec, calibration constants and registry
  contents (``--json`` for machine-readable output).

Every command resolves patterns/engines/placements/schedules/importance
metrics through the string registries and drives the pipeline exclusively
via ``repro.compile(...)`` / ``repro.tune(...)`` — there is no hand-wired
plan or pruner construction here.  Commands print human-readable tables
(or JSON) and exit non-zero on invalid input, so the CLI is scriptable.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.core.importance import available_importance
from repro.core.schedule import available_schedules
from repro.kernels.fusion import EPILOGUES
from repro.patterns.registry import available_engines, available_patterns
from repro.runtime.executor import available_executors

__all__ = ["main", "build_parser"]

#: serving/pricing dtypes: floats execute end to end; int8 is weights-only
#: quantisation (float32 activations, fp32 accumulation, per-tile scales)
_DTYPES = ("float64", "float32", "float16", "int8")

_PRICE_PATTERNS = sorted(set(available_patterns()) | {"dense", "tew"})
_SWEEP_PATTERNS = sorted(set(available_patterns()) | {"tew"})
_TUNE_PATTERNS = sorted(set(available_patterns()) | {"tew"})
_PLACEMENTS = ("single", "replicated", "layer_sharded")
#: mirrors repro.experiments.accuracy.TASKS without importing the (heavy)
#: experiment module at parser-build time; test_cli pins the equality
_TASKS = ("mnli", "squad", "vgg", "nmt")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tile-wise sparsity (SC 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_prune = sub.add_parser("prune", help="TW-prune a .npy weight matrix")
    p_prune.add_argument("weight", help="path to a 2-D .npy weight matrix")
    p_prune.add_argument("--sparsity", type=float, default=0.75)
    p_prune.add_argument("--granularity", "-G", type=int, default=128)
    p_prune.add_argument(
        "--out", help="write the compiled model here (.npz, repro.load reads it)"
    )
    p_prune.add_argument(
        "--split", type=float, default=0.5,
        help="column/row budget split (0=rows only, 1=columns only)",
    )

    p_tune = sub.add_parser(
        "tune", help="gradual prune + fine-tune a Mini* task via repro.tune"
    )
    p_tune.add_argument("task", choices=_TASKS)
    p_tune.add_argument("--pattern", default="tw", choices=_TUNE_PATTERNS)
    p_tune.add_argument("--sparsity", type=float, default=0.75)
    p_tune.add_argument("--granularity", "-G", type=int, default=16,
                        help="TW tile width (Mini* models are small; "
                             "16 matches the paper-scale examples)")
    p_tune.add_argument("--schedule", default="gradual",
                        choices=available_schedules())
    p_tune.add_argument("--stages", type=int, default=None,
                        help="prune+fine-tune stages (default: 2 for "
                             "gradual; oneshot is single-stage by "
                             "definition)")
    p_tune.add_argument("--law", default=None,
                        choices=["linear", "cubic", "geometric"],
                        help="sparsity increase law (schedule default: cubic)")
    p_tune.add_argument("--importance", default="taylor",
                        choices=available_importance())
    p_tune.add_argument("--tew-delta", type=float, default=0.05,
                        help="EW restore fraction when --pattern tew")
    p_tune.add_argument("--no-apriori", action="store_true",
                        help="disable Algorithm 2's EW-informed prior")
    p_tune.add_argument("--train-samples", type=int, default=256,
                        help="dense-training set size (smaller = faster)")
    p_tune.add_argument("--finetune-epochs", type=int, default=None,
                        help="override per-stage fine-tuning epochs "
                             "(0 = prune-only stages)")
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--out",
                        help="save the tuned compiled model here (.npz; "
                             "TW sessions only)")
    p_tune.add_argument("--json", action="store_true",
                        help="machine-readable trajectory output")

    p_lat = sub.add_parser("latency", help="price a model on the simulated V100")
    p_lat.add_argument("model", choices=["bert", "vgg", "nmt"])
    p_lat.add_argument("--pattern", default="tw", choices=_PRICE_PATTERNS)
    p_lat.add_argument("--sparsity", type=float, default=0.75)
    p_lat.add_argument("--granularity", "-G", type=int, default=128)
    p_lat.add_argument("--engine", default="tensor_core", choices=available_engines())
    p_lat.add_argument("--dtype", default=None, choices=_DTYPES,
                       help="price at this execution dtype (picks the "
                            "tensor-core calibration for float16/int8, "
                            "cuda-core for float32/float64, and scales "
                            "the memory legs by the element size); "
                            "default: the engine's historical pricing")

    p_sweep = sub.add_parser("sweep", help="speedup vs sparsity table")
    p_sweep.add_argument("model", choices=["bert", "vgg", "nmt"])
    p_sweep.add_argument("--pattern", default="tw", choices=_SWEEP_PATTERNS)
    p_sweep.add_argument("--granularity", "-G", type=int, default=128)
    p_sweep.add_argument("--engine", default="tensor_core", choices=available_engines())
    p_sweep.add_argument(
        "--sparsities", type=float, nargs="+",
        default=[0.0, 0.25, 0.5, 0.75, 0.9, 0.99],
    )

    p_serve = sub.add_parser(
        "serve", help="serve a demo weight stack through the TW pipeline"
    )
    p_serve.add_argument("model", choices=["bert", "vgg", "nmt"])
    p_serve.add_argument("--pattern", default="tw", choices=["tw"],
                         help="serving executes the TW format")
    p_serve.add_argument("--sparsity", type=float, default=0.75)
    p_serve.add_argument("--granularity", "-G", type=int, default=64)
    p_serve.add_argument("--devices", type=int, default=1,
                         help="number of (simulated) devices")
    p_serve.add_argument("--placement", default="single", choices=_PLACEMENTS)
    p_serve.add_argument("--executor", default="inline",
                         choices=available_executors(),
                         help="wave executor: inline (sequential oracle), "
                              "threaded (worker threads overlap device "
                              "slots) or process (worker processes over "
                              "shared-memory weight arenas — real "
                              "multi-core parallelism)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker cap for --executor threaded/process "
                              "(default: one per device slot)")
    p_serve.add_argument("--cache-budget", type=int, default=0,
                         help="LRU entry budget for the format/plan caches "
                              "(0 = unbounded)")
    p_serve.add_argument("--max-retries", type=int, default=2,
                         help="re-execution budget per failed wave group "
                              "before bisection isolates the poison request")
    p_serve.add_argument("--deadline-s", type=float, default=None,
                         help="per-request deadline (seconds, relative to "
                              "submit); expired requests are shed before any "
                              "GEMM runs")
    p_serve.add_argument("--max-queue-rows", type=int, default=0,
                         help="backpressure bound on queued rows "
                              "(0 = unbounded)")
    p_serve.add_argument("--shed-policy", default="reject",
                         choices=["reject", "shed_oldest"],
                         help="what to do when --max-queue-rows is hit")
    p_serve.add_argument("--watchdog-s", type=float, default=None,
                         help="per-wave stall bound for the threaded/process "
                              "executors (default: executor's own, 60s)")
    p_serve.add_argument("--faults", default=None,
                         help="deterministic fault schedule, e.g. "
                              "'exception:wave=1;latency:rate=0.1:duration=0.01' "
                              "(kinds: exception, latency, stall, kill)")
    p_serve.add_argument("--expect-all-ok", action="store_true",
                         help="exit non-zero unless every request ends "
                              "status=ok (CI smoke contract)")
    p_serve.add_argument("--pace", type=float, default=0.0,
                         help="simulated-device pacing scale: each GEMM "
                              "occupies its slot for pace x the cost-model "
                              "device time (0 = run flat out)")
    p_serve.add_argument("--scale", type=int, default=8,
                         help="shrink model dims by this factor (demo sizing)")
    p_serve.add_argument("--blocks", type=int, default=2,
                         help="encoder blocks (bert stack)")
    p_serve.add_argument("--requests", type=int, default=16,
                         help="requests for the lock-step drain (ignored "
                              "under --continuous, where --rate x --duration "
                              "decides the offered load)")
    p_serve.add_argument("--rows", type=int, default=8,
                         help="activation rows per request")
    p_serve.add_argument("--dtype", default="float32", choices=_DTYPES,
                         help="execution dtype; int8 quantises weights "
                              "per tile (requests stay float32)")
    p_serve.add_argument("--epilogue", default=None,
                         choices=sorted(EPILOGUES.names()),
                         help="fuse this epilogue into every layer's wave "
                              "task (deterministic demo parameters)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--continuous", action="store_true",
                         help="continuous-batching mode: stream requests "
                              "through the async ingress (ServingLoop) on a "
                              "seeded open-loop arrival schedule instead of "
                              "one lock-step submit/flush drain")
    p_serve.add_argument("--rate", type=float, default=50.0,
                         help="offered request rate, req/s (--continuous)")
    p_serve.add_argument("--duration", type=float, default=5.0,
                         help="offered-load duration, seconds (--continuous)")
    p_serve.add_argument("--arrival", default="poisson",
                         choices=["poisson", "fixed"],
                         help="open-loop arrival process (--continuous)")
    p_serve.add_argument("--stats-json", default=None, metavar="PATH",
                         help="dump the structured stats snapshot (queue "
                              "depth, wave occupancy, per-device busy %%, "
                              "cache hit rate, latency percentiles) as JSON")
    p_serve.add_argument("--stats-interval-s", type=float, default=0.0,
                         help="emit a one-line ingress stats log every N "
                              "seconds during --continuous (0 = off)")
    p_serve.add_argument("--http", type=int, default=None, metavar="PORT",
                         help="network mode: serve POST /v1/infer (binary "
                              "tensor wire format or JSON), GET /healthz and "
                              "GET /v1/stats over HTTP on PORT (0 = pick a "
                              "free port) until SIGTERM/Ctrl-C, then drain "
                              "gracefully; --requests/--rate/--duration are "
                              "ignored — traffic comes from the network")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address for --http (default loopback)")
    p_serve.add_argument("--drain-timeout-s", type=float, default=30.0,
                         help="bound on the graceful drain at --http "
                              "shutdown; stragglers past it are failed "
                              "instead of hanging the exit")

    p_info = sub.add_parser("info", help="device spec and calibration constants")
    p_info.add_argument("--json", action="store_true",
                        help="machine-readable output for harnesses")
    return parser


def _cmd_prune(args: argparse.Namespace) -> int:
    import repro
    from repro.analysis import format_table

    try:
        weight = np.load(args.weight)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load weight matrix: {exc}", file=sys.stderr)
        return 2
    if weight.ndim != 2:
        print(f"error: expected a 2-D matrix, got shape {weight.shape}",
              file=sys.stderr)
        return 2
    if not (0.0 <= args.sparsity < 1.0):
        print("error: --sparsity must be in [0, 1)", file=sys.stderr)
        return 2
    from repro.core import TWPruneConfig

    model = repro.compile(
        weight,
        pattern="tw",
        sparsity=args.sparsity,
        prune_config=TWPruneConfig(
            granularity=args.granularity, col_row_split=args.split
        ),
    )
    layer = model.layers[0]
    print(format_table(
        ["metric", "value"],
        [
            ["shape", f"{weight.shape[0]}x{weight.shape[1]}"],
            ["target sparsity", args.sparsity],
            ["achieved sparsity", model.achieved_sparsity],
            ["tiles", layer.tw.n_tiles],
            ["kept columns", layer.tw.kept_columns],
            ["load imbalance", layer.tw.load_imbalance()],
            ["memory (fp16+masks)", f"{layer.tw.memory_bytes()} B"],
        ],
    ))
    if args.out:
        model.save(args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import repro
    from repro.analysis import format_table

    if not (0.0 <= args.sparsity < 1.0):
        print("error: --sparsity must be in [0, 1)", file=sys.stderr)
        return 2
    if args.granularity < 1:
        print("error: --granularity must be >= 1", file=sys.stderr)
        return 2
    if args.stages is not None and args.stages < 1:
        print("error: --stages must be >= 1", file=sys.stderr)
        return 2
    if args.schedule == "oneshot" and (
        args.stages not in (None, 1) or args.law is not None
    ):
        print("error: the oneshot schedule is single-stage by definition; "
              "drop --stages/--law or use --schedule gradual", file=sys.stderr)
        return 2
    if args.train_samples < 1:
        print("error: --train-samples must be >= 1", file=sys.stderr)
        return 2
    if args.finetune_epochs is not None and args.finetune_epochs < 0:
        print("error: --finetune-epochs must be >= 0", file=sys.stderr)
        return 2
    if not (0.0 <= args.tew_delta < 1.0):
        print("error: --tew-delta must be in [0, 1)", file=sys.stderr)
        return 2
    import dataclasses

    from repro.experiments.accuracy import prepare_task

    if not args.json:
        print(f"training dense {args.task} baseline "
              f"({args.train_samples} samples) ...")
    bundle = prepare_task(args.task, seed=args.seed,
                          train_samples=args.train_samples)
    train = None
    if args.finetune_epochs is not None:
        train = dataclasses.replace(bundle.finetune, epochs=args.finetune_epochs)
    # historical default: the accuracy experiments run 2 gradual stages;
    # oneshot passes None through so its factory pins n_stages=1
    stages = args.stages
    if stages is None and args.schedule == "gradual":
        stages = 2
    result = repro.tune(
        bundle.adapter(),
        pattern=args.pattern,
        sparsity=args.sparsity,
        granularity=args.granularity,
        schedule=args.schedule,
        n_stages=stages,
        law=args.law,
        importance=args.importance,
        tew=args.tew_delta if args.pattern == "tew" else None,
        apriori=not args.no_apriori,
        train=train,
        evaluate=bundle.evaluate,
    )
    if args.json:
        import json

        print(json.dumps({
            "task": args.task,
            "pattern": result.pattern,
            "metric_name": bundle.metric_name,
            "baseline_metric": bundle.baseline_metric,
            "final_metric": result.metric,
            "achieved_sparsity": result.achieved_sparsity,
            "trajectory": result.trajectory(),
        }, indent=1))
    else:
        print(format_table(
            ["stage", "kind", "target", "achieved", bundle.metric_name],
            [
                [s.index, s.kind, f"{s.target_sparsity:.3f}",
                 f"{s.achieved_sparsity:.3f}", s.metric]
                for s in result.history
            ],
        ))
        drop = bundle.baseline_metric - (result.metric or 0.0)
        print(f"dense {bundle.metric_name}: {bundle.baseline_metric:.3f}   "
              f"tuned: {result.metric:.3f}   drop: {drop:+.3f}   "
              f"sparsity: {result.achieved_sparsity:.3f}")
    if args.out:
        try:
            result.save(args.out)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            print(f"wrote {args.out}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    import repro
    from repro.analysis import format_table

    if not (0.0 <= args.sparsity <= 1.0):
        print("error: --sparsity must be in [0, 1]", file=sys.stderr)
        return 2
    try:
        price = repro.compile(
            args.model,
            pattern=args.pattern,
            sparsity=args.sparsity,
            granularity=args.granularity,
            engine=args.engine,
        ).price(dtype=args.dtype)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rep = price.end_to_end
    fr = rep.fractions()
    print(format_table(
        ["metric", "value"],
        [
            ["model", args.model],
            ["pattern", args.pattern],
            ["sparsity", args.sparsity],
            ["engine", price.engine if args.dtype else args.engine],
            ["dtype", args.dtype or "(engine default)"],
            ["GEMM-only speedup", f"{price.gemm_speedup:.2f}x"],
            ["end-to-end latency", f"{rep.total_us / 1e3:.3f} ms"],
            ["  gemm fraction", fr["gemm"]],
            ["  transpose fraction", fr["transpose"]],
            ["  non-GEMM fraction", fr["others"]],
        ],
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import repro
    from repro.analysis import format_table

    rows = []
    for s in args.sparsities:
        if not (0.0 <= s <= 1.0):
            print(f"error: sparsity {s} out of [0, 1]", file=sys.stderr)
            return 2
        try:
            price = repro.compile(
                args.model,
                pattern=args.pattern,
                sparsity=s,
                granularity=args.granularity,
                engine=args.engine,
            ).price()
        except ValueError as exc:
            print(f"error: sparsity {s}: {exc}", file=sys.stderr)
            return 2
        rows.append([f"{s:.0%}", price.gemm_speedup])
    print(format_table(["sparsity", "speedup (x)"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import repro
    from repro.analysis import format_table
    from repro.api import demo_layer_stack
    from repro.runtime.placement import Placement

    if not (0.0 <= args.sparsity < 1.0):
        print("error: --sparsity must be in [0, 1)", file=sys.stderr)
        return 2
    if args.devices < 1:
        print("error: --devices must be >= 1", file=sys.stderr)
        return 2
    if args.placement == "single" and args.devices != 1:
        print("error: 'single' placement takes exactly one device", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.pace < 0:
        print("error: --pace must be >= 0", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.deadline_s is not None and args.deadline_s < 0:
        print("error: --deadline-s must be >= 0", file=sys.stderr)
        return 2
    if args.max_queue_rows < 0:
        print("error: --max-queue-rows must be >= 0", file=sys.stderr)
        return 2
    if args.cache_budget < 0:
        print("error: --cache-budget must be >= 0", file=sys.stderr)
        return 2
    if args.continuous and (args.rate <= 0 or args.duration <= 0):
        print("error: --continuous needs --rate > 0 and --duration > 0",
              file=sys.stderr)
        return 2
    if args.stats_interval_s < 0:
        print("error: --stats-interval-s must be >= 0", file=sys.stderr)
        return 2
    if args.http is not None and args.continuous:
        print("error: --http and --continuous are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.http is not None and not (0 <= args.http <= 65535):
        print("error: --http port must be in [0, 65535]", file=sys.stderr)
        return 2
    if args.drain_timeout_s <= 0:
        print("error: --drain-timeout-s must be > 0", file=sys.stderr)
        return 2
    from repro.gpu.device import V100

    placement = Placement(args.placement, (V100,) * args.devices)
    weights, names = demo_layer_stack(
        args.model, scale=args.scale, blocks=args.blocks, seed=args.seed
    )
    try:
        model = repro.compile(
            weights,
            pattern=args.pattern,
            sparsity=args.sparsity,
            granularity=args.granularity,
            placement=placement,
            dtype=np.dtype(args.dtype),
            epilogue=args.epilogue,
            names=names,
        )
    except ValueError as exc:  # e.g. a residual epilogue on a non-square layer
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server = model.serve(
            executor=args.executor, workers=args.workers,
            cache_budget=args.cache_budget or None,
            pace=args.pace if args.pace > 0 else None,
            max_retries=args.max_retries,
            max_queue_rows=args.max_queue_rows,
            shed_policy=args.shed_policy,
            watchdog_s=args.watchdog_s,
            faults=args.faults,
        )
    except ValueError as exc:  # e.g. a malformed --faults spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.http is not None:
        return _serve_http(args, model, placement, server)
    if args.continuous:
        return _serve_continuous(args, model, placement, server, weights)
    from repro.runtime.server import QueueFullError

    rng = np.random.default_rng(args.seed + 1)
    k = weights[0].shape[0]
    req_dtype = _request_dtype(args.dtype)
    rejected = 0
    try:
        for _ in range(args.requests):
            x = rng.standard_normal((args.rows, k)).astype(req_dtype)
            try:
                server.submit(x, deadline_s=args.deadline_s)
            except QueueFullError:
                rejected += 1
        served = server.flush()
    finally:
        # deterministic teardown: worker pool down, arenas unlinked
        server.close()
    st = server.stats
    by_status: dict[str, int] = {}
    for req in served:
        by_status[req.status] = by_status.get(req.status, 0) + 1
    rows = [
        ["model", f"{args.model} ({model.n_layers} layers, scale 1/{args.scale})"],
        ["achieved sparsity", model.achieved_sparsity],
        ["placement", f"{placement.kind} x{placement.n_devices}"],
        ["executor", server.executor.describe()],
        ["shard layout", " ".join(
            f"{name}:{n}" for name, n in _shard_counts(server.shard_layout())
        )],
        ["requests", st.requests],
        ["rows", st.rows],
        ["waves", st.batches],
        ["GEMMs", st.gemms],
        ["rows/s (GEMM busy)", f"{st.rows_per_s():.0f}"],
        ["mean latency", f"{st.mean_latency_s() * 1e3:.3f} ms"],
        ["busy (sum over devices)", f"{st.busy_s * 1e3:.3f} ms"],
        ["critical path (max device)", f"{st.critical_path_s() * 1e3:.3f} ms"],
        ["wall time (measured)", f"{st.wall_time_s * 1e3:.3f} ms"],
        ["measured speedup (busy/wall)", f"{st.measured_speedup():.2f}x"],
        ["parallel efficiency", f"{st.parallel_efficiency():.2f}"],
        ["statuses", " ".join(
            f"{k}:{v}" for k, v in sorted(by_status.items())
        ) or "-"],
    ]
    if rejected:
        rows.append(["rejected at submit (queue full)", rejected])
    if st.retries or st.requeues or st.poisoned:
        rows.append(["retries (wave re-runs)", st.retries])
        rows.append(["requeued requests", st.requeues])
        rows.append(["poisoned (isolated)", st.poisoned])
    if st.shed or st.expired:
        rows.append(["shed (backpressure)", st.shed])
        rows.append(["expired (deadline)", st.expired])
    if server.config.faults is not None:
        rows.append(["faults injected", server.config.faults.total_fired])
    for name in sorted(st.device_gemms):
        rows.append([
            f"  {name}",
            f"{st.device_gemms[name]} GEMMs, {st.device_busy_s[name] * 1e3:.3f} ms",
        ])
    print(format_table(["metric", "value"], rows))
    if args.stats_json:
        _dump_stats_json(args.stats_json, server.stats_record())
    if args.expect_all_ok:
        not_ok = sum(v for k, v in by_status.items() if k != "ok")
        if not_ok or rejected or st.requests != args.requests:
            print(
                f"error: --expect-all-ok: {st.requests}/{args.requests} ok, "
                f"{not_ok} non-ok, {rejected} rejected",
                file=sys.stderr,
            )
            return 1
    return 0


def _dump_stats_json(path: str, record: dict) -> None:
    import json

    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"stats written to {path}")


def _serve_http(args, model, placement, server) -> int:
    """``repro serve --http PORT``: the network front door.

    Stacks a :class:`ServingLoop` and :class:`NetServer` over the
    already-built server and blocks until SIGTERM/Ctrl-C, then drains
    gracefully (bounded by ``--drain-timeout-s``) and — HTTP mode
    included — writes the final ``--stats-json`` snapshot on the way
    out.
    """
    from repro.analysis import format_table
    from repro.runtime.ingress import ServingLoop
    from repro.runtime.netserve import NetServer

    ingress = ServingLoop(
        server,
        stats_interval_s=args.stats_interval_s,
        stats_log=print,
    )
    net = NetServer(
        ingress,
        host=args.host,
        port=args.http,
        drain_timeout_s=args.drain_timeout_s,
        stats_json=args.stats_json,
        log_fn=print,
        owns_loop=True,
    )
    try:
        net.run()
    finally:
        # the loop does not own this server (the CLI built it); close for
        # deterministic teardown — worker pool down, arenas unlinked
        server.close()
    record = net.final_stats or {}
    st = record.get("latency_ms", {})
    rows = [
        ["model", f"{args.model} ({model.n_layers} layers, scale 1/{args.scale})"],
        ["placement", f"{placement.kind} x{placement.n_devices}"],
        ["executor", server.executor.describe()],
        ["endpoint", f"http://{args.host}:{net.port}/v1/infer"],
        ["requests seen (HTTP)", record.get("net", {}).get("requests_seen", 0)],
        ["requests served", record.get("requests", 0)],
        ["waves", record.get("waves", {}).get("count", 0)],
        ["latency p50/p95/p99", "{} / {} / {} ms".format(
            st.get("p50", 0.0), st.get("p95", 0.0), st.get("p99", 0.0)
        )],
        ["drained cleanly", record.get("net", {}).get("drained", True)],
    ]
    if server.config.faults is not None:
        rows.append(["faults injected", server.config.faults.total_fired])
    print(format_table(["metric", "value"], rows))
    return 0


def _serve_continuous(args, model, placement, server, weights) -> int:
    """``repro serve --continuous``: open-loop traffic through the ingress.

    Streams a seeded arrival schedule (``--arrival``/``--rate``/
    ``--duration``) through a :class:`ServingLoop` over the already-built
    server, then reports loadgen percentiles (enqueue→terminal, queue
    wait included) next to the server's own stats.
    """
    import asyncio

    from repro.analysis import format_table
    from repro.runtime.ingress import ServingLoop
    from repro.runtime.loadgen import run_open_loop

    rng = np.random.default_rng(args.seed + 1)
    k = weights[0].shape[0]
    req_dtype = _request_dtype(args.dtype)
    xs = [
        rng.standard_normal((args.rows, k)).astype(req_dtype)
        for _ in range(32)
    ]

    async def run():
        ingress = ServingLoop(
            server,
            stats_interval_s=args.stats_interval_s,
            stats_log=print,
        )
        async with ingress:
            result = await run_open_loop(
                ingress,
                lambda i: xs[i % len(xs)],
                rate=args.rate,
                duration_s=args.duration,
                arrival=args.arrival,
                seed=args.seed + 2,
                deadline_s=args.deadline_s,
            )
            record = ingress.stats_record()
        return result, record

    try:
        server.warm()  # executor workers + caches up before timed traffic
        result, record = asyncio.run(run())
    finally:
        server.close()
    rows = [
        ["model", f"{args.model} ({model.n_layers} layers, scale 1/{args.scale})"],
        ["placement", f"{placement.kind} x{placement.n_devices}"],
        ["executor", server.executor.describe()],
        ["arrival", f"{args.arrival} @ {args.rate:g} req/s x {args.duration:g}s"],
        ["requests offered", result.requests],
        ["achieved rate", f"{result.achieved_rps:.1f} req/s"],
        ["rows/s (end to end)", f"{result.rows_per_s:.0f}"],
        ["waves admitted", record["ingress"]["waves_admitted"]],
        ["wave occupancy", f"{record['waves']['occupancy']:.3f}"],
        ["latency p50/p95/p99", "{p50:.3f} / {p95:.3f} / {p99:.3f} ms".format(
            **result.latency_ms
        )],
        ["queue wait mean", f"{result.queue_wait_ms['mean']:.3f} ms"],
        ["service mean (GEMM wall)", f"{result.service_ms['mean']:.3f} ms"],
        ["statuses", " ".join(
            f"{k}:{v}" for k, v in sorted(result.statuses.items())
        ) or "-"],
    ]
    if server.config.faults is not None:
        rows.append(["faults injected", server.config.faults.total_fired])
    print(format_table(["metric", "value"], rows))
    if args.stats_json:
        record["loadgen"] = result.record()
        _dump_stats_json(args.stats_json, record)
    if args.expect_all_ok and (result.requests == 0 or not result.all_ok):
        not_ok = sum(v for k, v in result.statuses.items() if k != "ok")
        print(
            f"error: --expect-all-ok: {result.statuses.get('ok', 0)}"
            f"/{result.requests} ok, {not_ok} non-ok",
            file=sys.stderr,
        )
        return 1
    return 0


def _request_dtype(dtype: str) -> str:
    """The dtype request activations travel in: ``int8`` models quantise
    weights only, so their requests stay ``float32``."""
    return "float32" if np.dtype(dtype).kind in "iu" else dtype


def _shard_counts(layout: list[str]) -> list[tuple[str, int]]:
    from collections import Counter

    return sorted(Counter(layout).items())


def _info_record() -> dict:
    import dataclasses

    import repro
    from repro.core.importance import IMPORTANCE
    from repro.core.schedule import SCHEDULES
    from repro.gpu.calibration import DEFAULT_CALIBRATION
    from repro.gpu.device import V100
    from repro.patterns.registry import available_engines, available_patterns
    from repro.runtime.executor import EXECUTORS
    from repro.runtime.faults import FAULTS
    from repro.runtime.placement import PLACEMENTS

    return {
        "version": repro.__version__,
        "device": dataclasses.asdict(V100),
        "calibration": dataclasses.asdict(DEFAULT_CALIBRATION),
        "registries": {
            "patterns": available_patterns(),
            "engines": available_engines(),
            "placements": PLACEMENTS.names(),
            "executors": EXECUTORS.names(),
            "faults": FAULTS.names(),
            "schedules": SCHEDULES.names(),
            "importance": IMPORTANCE.names(),
            "epilogues": EPILOGUES.names(),
        },
    }


def _cmd_info(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import format_table

    record = _info_record()
    if getattr(args, "json", False):
        print(json.dumps(record, indent=1))
        return 0
    print("device:")
    print(format_table(
        ["field", "value"],
        [[k, v] for k, v in record["device"].items()],
    ))
    print("\ncalibration:")
    print(format_table(
        ["constant", "value"],
        [[k, v] for k, v in record["calibration"].items()],
    ))
    print("\nregistries:")
    print(format_table(
        ["registry", "entries"],
        [[k, " ".join(v)] for k, v in record["registries"].items()],
    ))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "prune": _cmd_prune,
        "tune": _cmd_tune,
        "latency": _cmd_latency,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
