"""Command-line interface: prune weights, price models, run sweeps.

Usage (``python -m repro <command> ...``):

- ``prune``   — tile-wise-prune a weight matrix (``.npy``) and save the
  compacted TW format (``.npz``) plus sparsity statistics;
- ``latency`` — price a (model, pattern, sparsity) combination on the
  simulated V100, GEMM-only and end-to-end;
- ``sweep``   — print a speedup-vs-sparsity table for one pattern;
- ``info``    — show the device spec and calibration constants in use.

Every command prints human-readable tables and exits non-zero on invalid
input, so the CLI is scriptable.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tile-wise sparsity (SC 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_prune = sub.add_parser("prune", help="TW-prune a .npy weight matrix")
    p_prune.add_argument("weight", help="path to a 2-D .npy weight matrix")
    p_prune.add_argument("--sparsity", type=float, default=0.75)
    p_prune.add_argument("--granularity", "-G", type=int, default=128)
    p_prune.add_argument("--out", help="write the compacted TW matrix here (.npz)")
    p_prune.add_argument(
        "--split", type=float, default=0.5,
        help="column/row budget split (0=rows only, 1=columns only)",
    )

    p_lat = sub.add_parser("latency", help="price a model on the simulated V100")
    p_lat.add_argument("model", choices=["bert", "vgg", "nmt"])
    p_lat.add_argument("--pattern", default="tw",
                       choices=["dense", "tw", "tew", "ew", "vw", "bw"])
    p_lat.add_argument("--sparsity", type=float, default=0.75)
    p_lat.add_argument("--granularity", "-G", type=int, default=128)
    p_lat.add_argument("--engine", default="tensor_core",
                       choices=["tensor_core", "cuda_core"])

    p_sweep = sub.add_parser("sweep", help="speedup vs sparsity table")
    p_sweep.add_argument("model", choices=["bert", "vgg", "nmt"])
    p_sweep.add_argument("--pattern", default="tw",
                         choices=["tw", "tew", "ew", "vw", "bw"])
    p_sweep.add_argument("--granularity", "-G", type=int, default=128)
    p_sweep.add_argument("--engine", default="tensor_core",
                         choices=["tensor_core", "cuda_core"])
    p_sweep.add_argument(
        "--sparsities", type=float, nargs="+",
        default=[0.0, 0.25, 0.5, 0.75, 0.9, 0.99],
    )

    sub.add_parser("info", help="device spec and calibration constants")
    return parser


def _cmd_prune(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.core import TWPruneConfig, tw_prune_step
    from repro.core.importance import magnitude_score
    from repro.formats import TiledTWMatrix
    from repro.formats.io import save_tiled

    try:
        weight = np.load(args.weight)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load weight matrix: {exc}", file=sys.stderr)
        return 2
    if weight.ndim != 2:
        print(f"error: expected a 2-D matrix, got shape {weight.shape}",
              file=sys.stderr)
        return 2
    if not (0.0 <= args.sparsity < 1.0):
        print("error: --sparsity must be in [0, 1)", file=sys.stderr)
        return 2
    cfg = TWPruneConfig(granularity=args.granularity, col_row_split=args.split)
    step = tw_prune_step([magnitude_score(weight)], args.sparsity, cfg)
    tw = TiledTWMatrix.from_masks(
        weight, args.granularity, step.col_keeps[0], step.row_masks[0]
    )
    print(format_table(
        ["metric", "value"],
        [
            ["shape", f"{weight.shape[0]}x{weight.shape[1]}"],
            ["target sparsity", args.sparsity],
            ["achieved sparsity", step.achieved_sparsity],
            ["tiles", tw.n_tiles],
            ["kept columns", tw.kept_columns],
            ["load imbalance", tw.load_imbalance()],
            ["memory (fp16+masks)", f"{tw.memory_bytes()} B"],
        ],
    ))
    if args.out:
        save_tiled(tw, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.experiments import gemm_speedup
    from repro.experiments.latency import end_to_end_report
    from repro.runtime import EngineConfig

    if not (0.0 <= args.sparsity <= 1.0):
        print("error: --sparsity must be in [0, 1]", file=sys.stderr)
        return 2
    speedup = gemm_speedup(
        args.model, args.pattern, args.sparsity,
        engine=args.engine, granularity=args.granularity,
    )
    rep = end_to_end_report(
        args.model, args.pattern, args.sparsity,
        EngineConfig(engine=args.engine), granularity=args.granularity,
    )
    fr = rep.fractions()
    print(format_table(
        ["metric", "value"],
        [
            ["model", args.model],
            ["pattern", args.pattern],
            ["sparsity", args.sparsity],
            ["engine", args.engine],
            ["GEMM-only speedup", f"{speedup:.2f}x"],
            ["end-to-end latency", f"{rep.total_us / 1e3:.3f} ms"],
            ["  gemm fraction", fr["gemm"]],
            ["  transpose fraction", fr["transpose"]],
            ["  non-GEMM fraction", fr["others"]],
        ],
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.experiments import gemm_speedup

    rows = []
    for s in args.sparsities:
        if not (0.0 <= s <= 1.0):
            print(f"error: sparsity {s} out of [0, 1]", file=sys.stderr)
            return 2
        rows.append([
            f"{s:.0%}",
            gemm_speedup(args.model, args.pattern, s,
                         engine=args.engine, granularity=args.granularity),
        ])
    print(format_table(["sparsity", "speedup (x)"], rows))
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    import dataclasses

    from repro.analysis import format_table
    from repro.gpu.calibration import DEFAULT_CALIBRATION
    from repro.gpu.device import V100

    print("device:")
    print(format_table(
        ["field", "value"],
        [[f.name, getattr(V100, f.name)] for f in dataclasses.fields(V100)],
    ))
    print("\ncalibration:")
    print(format_table(
        ["constant", "value"],
        [[f.name, getattr(DEFAULT_CALIBRATION, f.name)]
         for f in dataclasses.fields(DEFAULT_CALIBRATION)],
    ))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "prune": _cmd_prune,
        "latency": _cmd_latency,
        "sweep": _cmd_sweep,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
