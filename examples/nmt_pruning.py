#!/usr/bin/env python
"""Prune the attention NMT model and track BLEU (paper Fig. 12d).

Trains the MiniNMT encoder-decoder on the synthetic translation task, then
sweeps TW sparsity through the training-time front door (``repro.tune``)
and reports BLEU after each gradual prune + fine-tune session — the
paper's observation is that NMT tolerates moderate sparsity but drops
quickly past ~60 % (it "prefers irregular sparsities").  The last sweep
point also prints its per-stage trajectory, the ``TuneResult`` view of the
schedule at work.

Run:  python examples/nmt_pruning.py
"""

import repro
from repro.analysis import ascii_series, format_table
from repro.experiments import gemm_speedup, prepare_task

SPARSITIES = (0.25, 0.5, 0.6, 0.75)

print("training dense MiniNMT (this is the slowest example, ~1 min) ...")
bundle = prepare_task("nmt", train_samples=768)
print(f"dense BLEU: {bundle.baseline_metric:.1f}\n")

rows = []
bleus = []
result = None
for s in SPARSITIES:
    bundle.restore()
    result = repro.tune(
        bundle.adapter(),
        pattern="tw",
        sparsity=s,
        granularity=16,
        schedule="gradual",
        n_stages=2,
        importance="taylor",
        evaluate=bundle.evaluate,
    )
    speedup = gemm_speedup("nmt", "tw", s, granularity=128)
    rows.append([f"{s:.0%}", result.metric, bundle.baseline_metric - result.metric, speedup])
    bleus.append(result.metric)

print(format_table(["sparsity", "BLEU", "drop", "sim speedup (x)"], rows, precision=2))
print()
print(ascii_series(list(SPARSITIES), bleus, label="BLEU vs sparsity"))
print(f"\ntrajectory of the {SPARSITIES[-1]:.0%} session (gradual cubic schedule):")
print(format_table(
    ["stage", "target", "achieved", "BLEU"],
    [
        [t["stage"], t["target_sparsity"], t["achieved_sparsity"], t["metric"]]
        for t in result.trajectory()
    ],
    precision=3,
))
print(
    "\nExpected shape (paper Fig. 12d): BLEU holds to ~50-60% sparsity,"
    "\nthen falls off; simulated speedup grows with sparsity throughout."
)
