#!/usr/bin/env python
"""Prune the attention NMT model and track BLEU (paper Fig. 12d).

Trains the MiniNMT encoder-decoder on the synthetic translation task, then
sweeps TW sparsity and reports BLEU after prune + fine-tune at each level —
the paper's observation is that NMT tolerates moderate sparsity but drops
quickly past ~60 % (it "prefers irregular sparsities").

Run:  python examples/nmt_pruning.py
"""

from repro.analysis import ascii_series, format_table
from repro.experiments import gemm_speedup, prepare_task, prune_and_evaluate

SPARSITIES = (0.25, 0.5, 0.6, 0.75)

print("training dense MiniNMT (this is the slowest example, ~1 min) ...")
bundle = prepare_task("nmt", train_samples=768)
print(f"dense BLEU: {bundle.baseline_metric:.1f}\n")

rows = []
bleus = []
for s in SPARSITIES:
    bleu = prune_and_evaluate(bundle, "tw", s, granularity=16)
    speedup = gemm_speedup("nmt", "tw", s, granularity=128)
    rows.append([f"{s:.0%}", bleu, bundle.baseline_metric - bleu, speedup])
    bleus.append(bleu)

print(format_table(["sparsity", "BLEU", "drop", "sim speedup (x)"], rows, precision=2))
print()
print(ascii_series(list(SPARSITIES), bleus, label="BLEU vs sparsity"))
print(
    "\nExpected shape (paper Fig. 12d): BLEU holds to ~50-60% sparsity,"
    "\nthen falls off; simulated speedup grows with sparsity throughout."
)
