#!/usr/bin/env python
"""Quickstart: tile-wise pruning of one weight matrix, end to end.

Walks the library's core loop on a single GEMM — through the one front
door, ``repro.compile`` (the ROADMAP contract: no hand-wired
``tw_prune_step → from_masks → build_execution_plan → tw_gemm`` chains at
call sites):

1. compile a weight matrix at 75 % tile-wise sparsity (pruning, compact
   TW format and execution plans all happen inside ``compile``),
2. inspect what the pruner kept (``prune_report``),
3. verify the compiled TW forward matches dense GEMM on the masked
   weights — the paper's correctness claim,
4. price dense vs. TW execution on the simulated V100 (``price``).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

# ----------------------------------------------------------------- #
# 1. compile: prune -> compact TW format -> execution plan, one call
# ----------------------------------------------------------------- #
rng = np.random.default_rng(0)
K, N, G = 768, 768, 128
weight = rng.standard_normal((K, N))

model = repro.compile(weight, pattern="tw", sparsity=0.75, granularity=G)

# ----------------------------------------------------------------- #
# 2. what the pruner kept
# ----------------------------------------------------------------- #
report = model.prune_report()
layer = model.layers[0]
print(f"target sparsity {report['target_sparsity']} -> "
      f"achieved {report['achieved_sparsity']:.3f}")
print(f"columns kept: {report['layers'][0]['kept_columns']}/{N}")
print(f"tiles: {layer.tw.n_tiles}, widths {layer.tw.kept_widths().tolist()}, "
      f"depths {layer.tw.kept_depths().tolist()}")

# ----------------------------------------------------------------- #
# 3. the correctness claim: TW forward == dense GEMM on masked weights
# ----------------------------------------------------------------- #
M = 256
activations = rng.standard_normal((M, K))
sparse_out = model.run(activations)
dense_out = activations @ (weight * layer.mask)
np.testing.assert_allclose(sparse_out, dense_out, atol=1e-10)
print("model.run matches dense GEMM on the masked weights: OK")

# ----------------------------------------------------------------- #
# 4. price it on the simulated V100 tensor cores
# ----------------------------------------------------------------- #
M_latency = 8192  # high-throughput inference, tokens in flight
price = model.price(m=M_latency)
print(f"dense : {price.dense_gemm_us:8.1f} us")
print(f"TW    : {price.sparse_gemm_us:8.1f} us  "
      f"-> {price.gemm_speedup:.2f}x speedup "
      f"(paper: 2.26x at 75% with G=128)")
