#!/usr/bin/env python
"""Quickstart: tile-wise pruning of one weight matrix, end to end.

Walks the library's core loop on a single GEMM:

1. score a weight matrix (magnitude importance),
2. run one global TW pruning step at 75 % sparsity,
3. compact it into the TW execution format,
4. verify the masked GEMM matches dense GEMM on the masked weights,
5. price dense vs. TW execution on the simulated V100.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import TWPruneConfig, tw_prune_step
from repro.core.importance import magnitude_score
from repro.formats import TiledTWMatrix
from repro.gpu import dense_gemm_tc_cost, tw_gemm_cost
from repro.kernels import tw_gemm

# ----------------------------------------------------------------- #
# 1-2. prune a 768x768 weight matrix to 75% tile-wise sparsity
# ----------------------------------------------------------------- #
rng = np.random.default_rng(0)
K, N, G = 768, 768, 128
weight = rng.standard_normal((K, N))

step = tw_prune_step(
    [magnitude_score(weight)],
    stage_sparsity=0.75,
    config=TWPruneConfig(granularity=G),
)
print(f"target sparsity 0.75 -> achieved {step.achieved_sparsity:.3f}")
print(f"columns kept: {int(step.col_keeps[0].sum())}/{N}")

# ----------------------------------------------------------------- #
# 3. compact into the TW execution format
# ----------------------------------------------------------------- #
tw = TiledTWMatrix.from_masks(weight, G, step.col_keeps[0], step.row_masks[0])
print(f"tiles: {tw.n_tiles}, widths {tw.kept_widths().tolist()}, "
      f"depths {tw.kept_depths().tolist()}")

# ----------------------------------------------------------------- #
# 4. the correctness claim: TW GEMM == dense GEMM on masked weights
# ----------------------------------------------------------------- #
M = 256
activations = rng.standard_normal((M, K))
sparse_out = tw_gemm(activations, tw)
dense_out = activations @ (weight * step.masks[0])
np.testing.assert_allclose(sparse_out, dense_out, atol=1e-10)
print("tw_gemm matches dense GEMM on the masked weights: OK")

# ----------------------------------------------------------------- #
# 5. price it on the simulated V100 tensor cores
# ----------------------------------------------------------------- #
M_latency = 8192  # high-throughput inference, tokens in flight
dense_cost = dense_gemm_tc_cost(M_latency, N, K)
tw_cost = tw_gemm_cost(M_latency, tw)
print(f"dense : {dense_cost.total_us:8.1f} us")
print(f"TW    : {tw_cost.total_us:8.1f} us  "
      f"-> {dense_cost.total_us / tw_cost.total_us:.2f}x speedup "
      f"(paper: 2.26x at 75% with G=128)")
