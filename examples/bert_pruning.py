#!/usr/bin/env python
"""Prune a trained MiniBERT with every pattern and compare (paper Fig. 12a).

Trains the MNLI-like classifier once, then tunes it to 75 % sparsity with
EW / VW / BW / TW / TEW through the training-time front door
(``repro.tune``: gradual schedule → importance scoring → prune → optional
TEW overlay → per-stage fine-tuning) and reports accuracy alongside the
simulated BERT-base GEMM speedup of each pattern.

Run:  python examples/bert_pruning.py
"""

import repro
from repro.experiments import gemm_speedup, prepare_task

SPARSITY = 0.75
PATTERNS = ("ew", "vw", "bw", "tw", "tew")

print("training dense MiniBERT on the MNLI-like task ...")
bundle = prepare_task("mnli", train_samples=768)
print(f"dense accuracy: {bundle.baseline_metric:.3f}\n")

print(f"{'pattern':8s} {'accuracy':>9s} {'drop':>7s} {'sim speedup':>12s}  (vs its dense baseline)")
for pattern in PATTERNS:
    bundle.restore()
    result = repro.tune(
        bundle.adapter(),
        pattern=pattern,
        sparsity=SPARSITY,
        granularity=16,
        schedule="gradual",
        n_stages=2,
        importance="taylor",
        evaluate=bundle.evaluate,
    )
    speedup = gemm_speedup(
        "bert", pattern, SPARSITY,
        granularity=128, tew_delta=0.05 if pattern == "tew" else 0.0,
    )
    drop = bundle.baseline_metric - result.metric
    print(f"{pattern.upper():8s} {result.metric:9.3f} {drop:+7.3f} {speedup:11.2f}x")

print(
    "\nExpected shape (paper Fig. 12a + Fig. 14): EW/TEW hold accuracy best,"
    "\nBW loses the most; only TW executes faster than dense on tensor cores"
    "\n(TEW trades the tensor-core speedup back for accuracy — Fig. 10b)."
)
