#!/usr/bin/env python
"""Explore the TW granularity design space (paper Fig. 9).

Sweeps the tile width G over the accuracy side (MiniBERT, real pruning +
fine-tuning) and the latency side (BERT-base shapes on the simulated V100),
reproducing the paper's central trade-off: small G preserves accuracy like
fine-grained pruning, large G executes like dense GEMM — and G=128 is the
sweet spot.

Run:  python examples/design_space.py
"""

from repro.analysis import format_table
from repro.experiments import gemm_speedup, prepare_task, prune_and_evaluate

SPARSITY = 0.75
GRANULARITIES = (4, 8, 16, 32)          # accuracy side (mini model, dim 48)
LATENCY_GS = (8, 32, 64, 128)           # latency side (BERT-base, dim 768)

print("training dense MiniBERT ...")
bundle = prepare_task("mnli", train_samples=768)
print(f"dense accuracy: {bundle.baseline_metric:.3f}\n")

rows = []
for g in GRANULARITIES:
    acc = prune_and_evaluate(bundle, "tw", SPARSITY, granularity=g)
    rows.append([f"G={g}", acc, bundle.baseline_metric - acc])
print("accuracy at 75% sparsity vs granularity (mini model):")
print(format_table(["config", "accuracy", "drop"], rows))

rows = []
for g in LATENCY_GS:
    speedup = gemm_speedup("bert", "tw", SPARSITY, granularity=g)
    rows.append([f"G={g}", speedup])
print("\nsimulated BERT-base GEMM speedup at 75% sparsity vs granularity:")
print(format_table(["config", "speedup (x)"], rows))

print(
    "\nExpected shape (paper Fig. 9): accuracy degrades slightly as G grows;"
    "\nspeedup grows strongly with G — G=128 balances both."
)
