#!/usr/bin/env python
"""End-to-end latency breakdown with the optimisation ablation (Fig. 15).

Prices a full BERT-base forward pass (GEMM + transpose + non-GEMM kernels)
at 75 % TW sparsity under the paper's three implementation configurations:

- W/o Transpose  — untransposed layout: the GEMM pays the uncoalesced
  penalty and cannot benefit from sparsity;
- Transpose Only — transpose kernels at every GEMM boundary (~10 % tax);
- Transpose & Fusion — non-GEMM kernels consume the transposed layout, so
  only two real transposes remain, and fusion shrinks the non-GEMM share.

Run:  python examples/end_to_end_engine.py
"""

from repro.analysis import ascii_bars, format_table
from repro.experiments.latency import end_to_end_report
from repro.runtime import EngineConfig, TransposePlan

CONFIGS = {
    "Dense (fused)": ("dense", 0.0, EngineConfig()),
    "W/o Transpose": ("tw", 0.75, EngineConfig(transpose=TransposePlan("none"), fusion=False)),
    "Transpose Only": ("tw", 0.75, EngineConfig(transpose=TransposePlan("per_layer"), fusion=False)),
    "Transpose & Fusion": ("tw", 0.75, EngineConfig()),
}

for model in ("bert", "nmt"):
    print(f"=== {model.upper()} end-to-end at 75% TW sparsity ===")
    rows = []
    totals = {}
    for label, (pattern, sparsity, config) in CONFIGS.items():
        rep = end_to_end_report(model, pattern, sparsity, config)
        fr = rep.fractions()
        rows.append([
            label, rep.total_us / 1e3,
            fr["gemm"], fr["transpose"], fr["others"],
        ])
        totals[label] = rep.total_us
    print(format_table(
        ["config", "total (ms)", "gemm", "transpose", "others"], rows
    ))
    dense_total = totals["Dense (fused)"]
    print("\nend-to-end latency relative to dense:")
    print(ascii_bars({k: v / dense_total for k, v in totals.items()}))
    best = dense_total / totals["Transpose & Fusion"]
    print(f"\nfully-optimised end-to-end speedup: {best:.2f}x "
          f"(paper: 1.61x BERT / 1.86x NMT)\n")
