"""Fig. 13 — weight-survival heat-maps of the four patterns at 75 %.

Prunes the trained MiniBERT's layer-0 attention matrix Wq with each pattern
and renders the surviving-weight density as a coarse heat-map — EW shows
smooth speckle with row/column texture, VW is uniform by construction, BW
is blocky, and TW shows full rows/columns removed with per-tile variation.

Quantified fingerprints replace visual inspection:

- VW's per-column sparsity variance ≈ 0 (the uniformity the paper
  criticises);
- TW's column-sparsity variance is the largest (whole columns die);
- BW's mask is exactly block-granular.
"""

import numpy as np

from repro.analysis import ExperimentRecord, format_table, mask_heatmap, save_results
from repro.core.importance import ImportanceConfig, score_matrix
from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.patterns import BlockWisePattern, ElementWisePattern, VectorWisePattern

SPARSITY = 0.75


def pattern_masks(bundle):
    """One mask per pattern for the layer-0 Wq matrix (index 0)."""
    adapter = bundle.adapter()
    weights = adapter.weight_matrices()
    grads = adapter.gradient_matrices()
    cfg = ImportanceConfig(method="taylor")
    scores = [score_matrix(w, g, cfg) for w, g in zip(weights, grads)]
    masks = {
        "EW": ElementWisePattern(scope="local").prune([scores[0]], SPARSITY).masks[0],
        "VW": VectorWisePattern(vector_size=8).prune([scores[0]], SPARSITY).masks[0],
        "BW": BlockWisePattern(block_shape=(4, 4)).prune([scores[0]], SPARSITY).masks[0],
        "TW": tw_prune_step([scores[0]], SPARSITY, TWPruneConfig(granularity=8)).masks[0],
    }
    return masks


def render(hm: np.ndarray) -> str:
    shades = " .:-=+*#%@"
    lines = []
    for row in hm:
        lines.append("".join(shades[min(int(v * (len(shades) - 1)), 9)] for v in row))
    return "\n".join(lines)


def test_fig13_heatmaps(benchmark, tasks, results_dir):
    bundle = tasks.get("mnli")
    bundle.restore()
    masks = benchmark.pedantic(lambda: pattern_masks(bundle), rounds=1, iterations=1)

    stats = {}
    for label, mask in masks.items():
        hm = mask_heatmap(mask, grid=12)
        print(f"\nFig. 13 ({label}) density heat-map "
              f"(sparsity {1 - mask.mean():.2f}):")
        print(render(hm))
        col_sp = 1.0 - mask.mean(axis=0)
        stats[label] = {
            "sparsity": float(1 - mask.mean()),
            "col_sparsity_std": float(col_sp.std()),
            "fully_zero_cols": int((col_sp == 1.0).sum()),
        }

    print("\npattern fingerprints:")
    print(format_table(
        ["pattern", "sparsity", "col-sparsity std", "fully-zero cols"],
        [[k, v["sparsity"], v["col_sparsity_std"], v["fully_zero_cols"]]
         for k, v in stats.items()],
    ))

    # VW is uniform per column; TW kills whole columns; BW is block-granular
    assert stats["VW"]["col_sparsity_std"] < 0.02
    assert stats["TW"]["fully_zero_cols"] > 0
    assert stats["TW"]["col_sparsity_std"] > stats["VW"]["col_sparsity_std"]
    bw_mask = masks["BW"]
    for r0 in range(0, bw_mask.shape[0], 4):
        for c0 in range(0, bw_mask.shape[1], 4):
            blk = bw_mask[r0 : r0 + 4, c0 : c0 + 4]
            assert blk.all() or not blk.any()

    save_results(
        ExperimentRecord(
            experiment="fig13",
            description="Pattern structure on layer-0 Wq at 75% sparsity",
            series=stats,
            paper_anchors={
                "VW uniform per unit": True,
                "TW adapts to sparsity locality": True,
            },
        ),
        results_dir,
    )
