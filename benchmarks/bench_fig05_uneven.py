"""Fig. 5 — uneven per-matrix sparsity under global EW pruning.

EW-prunes the trained MiniBERT at 75 % overall sparsity with one *global*
ranking and reports the sparsity of every weight matrix.  The paper's
BERT-base shows per-matrix sparsities ranging roughly 0.55–0.95 around the
0.75 mean across its 72 matrices; the mini model has 12 matrices (2 layers
× 6) — the per-matrix *spread* is the reproduced phenomenon.

This unevenness is the paper's argument for TW over VW: VW's fixed
per-vector quota cannot express it.
"""

import numpy as np

from repro.analysis import (
    ExperimentRecord,
    ascii_series,
    per_matrix_sparsity,
    save_results,
)
from repro.core.importance import ImportanceConfig, score_matrix
from repro.patterns import ElementWisePattern

SPARSITY = 0.75


def ew_per_matrix_sparsity(bundle):
    adapter = bundle.adapter()
    weights = adapter.weight_matrices()
    grads = adapter.gradient_matrices()
    cfg = ImportanceConfig(method="taylor")
    scores = [score_matrix(w, g, cfg) for w, g in zip(weights, grads)]
    masks = ElementWisePattern(scope="global").prune(scores, SPARSITY).masks
    return per_matrix_sparsity(masks)


def test_fig05_uneven_distribution(benchmark, tasks, results_dir):
    bundle = tasks.get("mnli")
    bundle.restore()
    sp = benchmark.pedantic(lambda: ew_per_matrix_sparsity(bundle), rounds=1, iterations=1)

    print(f"\nFig. 5: per-matrix sparsity of global EW pruning at {SPARSITY:.0%}")
    print(ascii_series(list(range(len(sp))), list(sp), label="matrix index vs sparsity"))
    print(f"mean {sp.mean():.3f}  min {sp.min():.3f}  max {sp.max():.3f}  "
          f"spread {sp.max() - sp.min():.3f}")

    # overall budget hit, but the distribution is genuinely uneven
    assert abs(np.average(sp, weights=[w.size for w in
               bundle.model.prunable_weights()]) - SPARSITY) < 0.02
    assert sp.max() - sp.min() > 0.1  # the Fig. 5 phenomenon

    save_results(
        ExperimentRecord(
            experiment="fig05",
            description="Per-matrix sparsity under global EW pruning (75%)",
            series={"per_matrix_sparsity": sp.tolist()},
            paper_anchors={
                "overall": SPARSITY,
                "paper spread (BERT-base, 72 matrices)": "~0.55-0.95",
            },
            notes="Mini model: 12 matrices (2 layers x 6) instead of 72.",
        ),
        results_dir,
    )
