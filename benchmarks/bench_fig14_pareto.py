"""Fig. 14 — the accuracy/latency Pareto frontier.

Combines the measured accuracy sweeps (mini models, real pruning) with the
simulated full-size latency of each configuration, for BERT / VGG / NMT on
tensor cores (TW vs BW) and CUDA cores (TW vs EW vs VW) — the paper's
summary plot.

Paper claim: **only TW extends the Pareto frontier** — on both engines and
all three models, every other sparse pattern is dominated by the dense
point (slower *and* less accurate).
"""

import pytest

from repro.analysis import (
    ExperimentRecord,
    ParetoPoint,
    format_table,
    pareto_frontier,
    save_results,
)
from repro.experiments import gemm_speedup

SPARSITIES = (0.5, 0.75, 0.9)
TASK_TO_MODEL = {"mnli": "bert", "vgg": "vgg", "nmt": "nmt"}
MINI_KW = {
    "mnli": {"granularity": 8, "block_shape": (4, 4), "vector_size": 16},
    "vgg": {"granularity": 4, "block_shape": (4, 4), "vector_size": 8},
    "nmt": {"granularity": 8, "block_shape": (4, 4), "vector_size": 16},
}
ENGINE_PATTERNS = {
    "tensor_core": ("tw", "bw"),
    "cuda_core": ("tw", "ew", "vw"),
}


def build_points(accuracy_cache, task: str, engine: str) -> list[ParetoPoint]:
    model = TASK_TO_MODEL[task]
    kw = MINI_KW[task]
    pts = [ParetoPoint(accuracy_cache.baseline(task), 1.0, "dense")]
    for pattern in ENGINE_PATTERNS[engine]:
        for s in SPARSITIES:
            acc_kw = {}
            lat_kw = {}
            if pattern == "tw":
                acc_kw = {"granularity": kw["granularity"]}
                lat_kw = {"granularity": 128}
            elif pattern == "bw":
                acc_kw = {"block_shape": kw["block_shape"]}
                lat_kw = {"block_size": 32}
            elif pattern == "vw":
                acc_kw = {"vector_size": kw["vector_size"]}
            acc = accuracy_cache.point(task, pattern, s, **acc_kw)
            speed = gemm_speedup(model, pattern, s, engine=engine, **lat_kw)
            pts.append(ParetoPoint(acc, speed, f"{pattern.upper()}@{s:.0%}"))
    return pts


@pytest.mark.parametrize("task", ["mnli", "vgg", "nmt"])
@pytest.mark.parametrize("engine", ["tensor_core", "cuda_core"])
def test_fig14_pareto(benchmark, accuracy_cache, results_dir, task, engine):
    points = benchmark.pedantic(
        lambda: build_points(accuracy_cache, task, engine), rounds=1, iterations=1
    )
    frontier = pareto_frontier(points)
    frontier_labels = {p.label for p in frontier}

    print(f"\nFig. 14 ({task} on {engine}):")
    rows = [
        [p.label, p.accuracy, p.speedup, "*" if p.label in frontier_labels else ""]
        for p in points
    ]
    print(format_table(["config", "accuracy", "speedup", "frontier"], rows))

    # the paper's claim: TW extends the frontier beyond the dense point;
    # no other sparse pattern does
    tw_on_frontier = any(lbl.startswith("TW") for lbl in frontier_labels)
    others_faster_than_dense = [
        p for p in points
        if not p.label.startswith(("TW", "dense")) and p.speedup > 1.0
    ]
    assert tw_on_frontier, "TW should extend the Pareto frontier"
    # EW/VW/BW may only beat dense at sparsities that wreck accuracy; they
    # must never dominate the dense point
    dense_pt = points[0]
    for p in others_faster_than_dense:
        assert p.accuracy < dense_pt.accuracy, f"{p.label} dominates dense"

    save_results(
        ExperimentRecord(
            experiment=f"fig14_{task}_{engine}",
            description=f"Pareto frontier for {task} on {engine}",
            series={"points": [p.as_dict() for p in points],
                    "frontier": sorted(frontier_labels)},
            paper_anchors={"only TW extends the frontier": True},
        ),
        results_dir,
    )
