"""Hot-path perf-regression benchmark: prune step, SpMM, formats, engine.

Times the vectorised production paths against their scalar reference
oracles at BERT-base scale and writes ``BENCH_hotpaths.json`` so every
future PR has a perf trajectory to regress against:

- **prune_step** — the global TW pruning step over the 12 BERT-base FFN
  expansion matrices (``768×3072``), swept over schedule stages (the
  gradual schedule starts at low sparsity, where the scalar per-unit loops
  hurt most) and granularities from the paper's design space (Fig. 9).
  Reference = ``tw_prune_step_reference`` (the seed implementation, kept
  verbatim).  Fresh score matrices per config, as a pruning schedule
  produces them.
- **spmm** — CSR/CSC sparse×dense products against the scalar row-/column-
  wise references.
- **transpose** — the panel-blocked transpose against the square-block
  scalar-loop reference.
- **formats** — CSR / TiledTW construction times (no scalar oracle exists;
  recorded for trajectory only).
- **end_to_end** — ``InferenceEngine.end_to_end`` over the BERT-base plan
  set, cold engine vs warm engine (the per-engine dense-cost and synthetic
  tile-stats memos).
- **tw_gemm** — the width-grouped batched TW executor against the
  one-kernel-per-tile ``tw_gemm_reference`` oracle on BERT-base FFN
  geometry (768×3072), at serving batch sizes and dtypes.  The batched
  path replays the plan's memoised group operands, as a serving loop does.
- **mixed_precision** — the TW GEMM at BERT-base FFN serving shapes under
  ``float32`` / ``float16`` / ``int8`` storage: measured host wall-clock
  (honest: host BLAS has no reduced-precision kernels, so dtypes tie),
  the cost model's modeled device time on its dtype axis (tensor-core
  calibration + element-size-scaled memory legs, where fp16/int8 clear
  the 1.3x bar), and the real payload compression.
- **fusion** — the fused epilogue consumers (``bias_gelu``,
  ``bias_layernorm``, ``dropout_residual_layernorm``) against their
  unfused ``*_reference`` compositions at BERT-base tail shapes, with
  float64 bit-identity asserted before timing.
- **server** — ``TWModelServer`` cold-vs-warm request latency (format/plan
  cache amortisation) and micro-batched vs sequential throughput.
- **server_sharded** — the BERT-base encoder layer stack compiled through
  ``repro.compile`` and served under each placement policy (``single``,
  ``replicated`` x2, ``layer_sharded`` x2): rows/s, per-device GEMM busy
  time, and the busy/critical-path ratio (the parallel headroom a sharded
  deployment would realise by overlapping shards).  Outputs are asserted
  identical across placements.
- **server_parallel** — measured wall-time of the ``threaded`` executor vs
  the ``inline`` oracle for 2-device placements on the same BERT-base
  stack.  Runs are *paced*: every GEMM occupies its device slot for
  ``pace ×`` the cost model's predicted device time (sleeps release the
  GIL), so the recorded ``wall_speedup_vs_inline`` measures the real
  overlap of the simulated devices on any host — including single-core CI
  boxes where concurrent *compute* cannot beat serial.  On multi-core
  hosts the same executor additionally overlaps the NumPy compute.
  Outputs are asserted bit-identical between executors; the measured
  speedup is reported next to the modeled ``critical_path_s`` headroom
  (their ratio is ``parallel_efficiency``).  The section's ``process``
  rows are the ISSUE 7 counterpart: *unpaced* wall-time of the
  ``process`` executor (one worker per device slot, weights mapped from
  shared-memory arenas, BLAS pinned to 1 thread per worker) vs unpaced
  ``inline``.  These rows measure genuine multi-core compute speedup, so
  they depend on the host: the ≥1.5x goal needs 2+ physical cores, and
  ``cpu_count`` is recorded next to the measurement to make a 1-core
  result legible as a host limit rather than a regression.
- **server_faults** — recovery overhead of the fault-tolerant flush path:
  the same BERT-base request stream served fault-free and under seeded
  deterministic fault schedules (transient exceptions retried at fresh
  wave indices, latency spikes absorbed in-wave, retry-budget exhaustion
  driving the bisection path).  Every scenario must end with all requests
  ``ok``, so ``flush_wall_ms`` measures the retry/bisect work itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--quick] [--out F]
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --sections server,tw_gemm

``--quick`` runs a reduced sweep for the ``perf_smoke`` pytest marker.
``--sections`` runs only the named sections (comma-separated) and merges
them into the existing ``--out`` file, so one subsystem's numbers can be
refreshed without re-timing the whole sweep.
This file is a standalone script, not a pytest-benchmark module, so it can
run in CI without the benchmark plugin.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

BERT_LAYERS = 12
BERT_K, BERT_N = 768, 3072


def _best_of(fn, reps: int) -> float:
    """Best wall-clock of ``reps`` calls, in milliseconds."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def bench_prune(quick: bool) -> dict:
    from repro.core.tile_sparsity import (
        TWPruneConfig,
        tw_prune_step,
        tw_prune_step_reference,
    )

    if quick:
        configs = [(0.75, 128), (0.25, 32)]
    else:
        configs = [(0.25, 16), (0.25, 32), (0.5, 32), (0.75, 32), (0.75, 128)]
    rng = np.random.default_rng(0)
    rows = []
    for sparsity, g in configs:
        # fresh score matrices per config — a pruning schedule recomputes
        # Taylor scores every stage, so the data is always newly written
        mats = [
            np.abs(rng.standard_normal((BERT_K, BERT_N))) for _ in range(BERT_LAYERS)
        ]
        cfg = TWPruneConfig(granularity=g)
        ref_ms = _best_of(lambda: tw_prune_step_reference(mats, sparsity, cfg), 1)
        vec_ms = _best_of(lambda: tw_prune_step(mats, sparsity, cfg), 1)
        rows.append(
            {
                "sparsity": sparsity,
                "granularity": g,
                "reference_ms": round(ref_ms, 1),
                "vectorized_ms": round(vec_ms, 1),
                "speedup": round(ref_ms / vec_ms, 1),
            }
        )
        print(
            f"prune  s={sparsity:.2f} G={g:<3d} ref {ref_ms:8.1f}ms  "
            f"vec {vec_ms:7.1f}ms  {ref_ms / vec_ms:5.1f}x"
        )
    return {
        "scale": f"{BERT_LAYERS}x({BERT_K}x{BERT_N})",
        "configs": rows,
        "headline_speedup": max(r["speedup"] for r in rows),
    }


def bench_spmm(quick: bool) -> dict:
    from repro.formats.csc import CSCMatrix
    from repro.formats.csr import CSRMatrix
    from repro.kernels.spmm import (
        csc_left_spmm,
        csr_spmm,
        spmm_colwise_reference,
        spmm_rowwise_reference,
    )

    rng = np.random.default_rng(1)
    k, n, b = (768, 768, 64) if quick else (BERT_N, BERT_K, 128)
    w = rng.standard_normal((k, n)) * (rng.random((k, n)) < 0.1)
    csr = CSRMatrix.from_dense(w)
    csc = CSCMatrix.from_dense(w.T)
    rhs = rng.standard_normal((n, b))
    lhs = rng.standard_normal((b, n))

    ref_r = _best_of(lambda: spmm_rowwise_reference(csr, rhs), 1)
    vec_r = _best_of(lambda: csr_spmm(csr, rhs), 3)
    ref_c = _best_of(lambda: spmm_colwise_reference(lhs, csc), 1)
    vec_c = _best_of(lambda: csc_left_spmm(lhs, csc), 3)
    print(f"spmm   csr ref {ref_r:8.1f}ms  vec {vec_r:7.1f}ms  {ref_r / vec_r:5.1f}x")
    print(f"spmm   csc ref {ref_c:8.1f}ms  vec {vec_c:7.1f}ms  {ref_c / vec_c:5.1f}x")
    return {
        "shape": [k, n, b],
        "nnz": csr.nnz,
        "csr": {
            "reference_ms": round(ref_r, 2),
            "vectorized_ms": round(vec_r, 2),
            "speedup": round(ref_r / vec_r, 1),
        },
        "csc": {
            "reference_ms": round(ref_c, 2),
            "vectorized_ms": round(vec_c, 2),
            "speedup": round(ref_c / vec_c, 1),
        },
    }


def bench_transpose(quick: bool) -> dict:
    from repro.kernels.transpose import blocked_transpose, blocked_transpose_reference

    rng = np.random.default_rng(2)
    # small: the production path's single-copy shortcut applies; large: the
    # 2-D blocked loop *is* the fastest known implementation (panel and
    # reshape variants measured ~2.5x slower), so parity is the expectation
    small = rng.standard_normal((128, 128))
    m, n = (1024, 768) if quick else (4096, 3072)
    large = rng.standard_normal((m, n))
    reps = 5 if quick else 3
    ref_s = _best_of(lambda: blocked_transpose_reference(small), 20)
    vec_s = _best_of(lambda: blocked_transpose(small), 20)
    ref_l = _best_of(lambda: blocked_transpose_reference(large), reps)
    vec_l = _best_of(lambda: blocked_transpose(large), reps)
    print(f"transp sml ref {ref_s:8.2f}ms  vec {vec_s:7.2f}ms  {ref_s / vec_s:5.1f}x")
    print(f"transp lrg ref {ref_l:8.1f}ms  vec {vec_l:7.1f}ms  {ref_l / vec_l:5.1f}x")
    return {
        "small": {
            "shape": [128, 128],
            "reference_ms": round(ref_s, 3),
            "vectorized_ms": round(vec_s, 3),
            "speedup": round(ref_s / vec_s, 1),
        },
        "large": {
            "shape": [m, n],
            "reference_ms": round(ref_l, 2),
            "vectorized_ms": round(vec_l, 2),
            "speedup": round(ref_l / vec_l, 1),
        },
    }


def bench_formats(quick: bool) -> dict:
    from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
    from repro.formats.csr import CSRMatrix
    from repro.formats.tiled import TiledTWMatrix

    rng = np.random.default_rng(3)
    w = rng.standard_normal((BERT_N, BERT_K)) * (rng.random((BERT_N, BERT_K)) < 0.1)
    csr_ms = _best_of(lambda: CSRMatrix.from_dense(w), 2 if quick else 3)

    dense = rng.standard_normal((BERT_K, BERT_N))
    step = tw_prune_step([np.abs(dense)], 0.75, TWPruneConfig(granularity=128))
    tw_ms = _best_of(
        lambda: TiledTWMatrix.from_masks(
            dense, 128, step.col_keeps[0], step.row_masks[0]
        ),
        2 if quick else 3,
    )
    print(f"format csr_from_dense {csr_ms:7.1f}ms   tiled_from_masks {tw_ms:7.1f}ms")
    return {
        "csr_from_dense_ms": round(csr_ms, 2),
        "tiled_from_masks_ms": round(tw_ms, 2),
    }


def bench_end_to_end(quick: bool) -> dict:
    from repro.models.registry import bert_base_gemm_shapes
    from repro.runtime.engine import EngineConfig, InferenceEngine, LayerPlan

    shapes = bert_base_gemm_shapes()
    plans = [LayerPlan(shape=s, pattern="tw", sparsity=0.75) for s in shapes]
    config = EngineConfig()

    def cold() -> None:
        InferenceEngine().end_to_end("bert", plans, config)

    engine = InferenceEngine()
    engine.end_to_end("bert", plans, config)  # prime the memos

    cold_ms = _best_of(cold, 2 if quick else 3)
    warm_ms = _best_of(lambda: engine.end_to_end("bert", plans, config), 3)
    print(f"e2e    cold {cold_ms:9.2f}ms  warm {warm_ms:7.2f}ms  {cold_ms / warm_ms:5.1f}x")
    return {
        "model": "bert",
        "cold_ms": round(cold_ms, 2),
        "warm_ms": round(warm_ms, 2),
        "memo_speedup": round(cold_ms / warm_ms, 1),
    }


def bench_tw_gemm(quick: bool) -> dict:
    from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
    from repro.formats.tiled import TiledTWMatrix
    from repro.kernels.masked import tw_gemm, tw_gemm_reference

    if quick:
        configs = [(128, 8, 0.5, "float64")]
    else:
        configs = [
            (128, 8, 0.5, "float64"),
            (128, 8, 0.5, "float32"),
            (64, 16, 0.75, "float64"),
            (256, 16, 0.75, "float32"),
            (8192, 128, 0.75, "float64"),
        ]
    rng = np.random.default_rng(4)
    dense = rng.standard_normal((BERT_K, BERT_N))
    rows = []
    steps = {}
    for m, g, sparsity, dtype in configs:
        if (g, sparsity) not in steps:
            steps[(g, sparsity)] = tw_prune_step(
                [np.abs(dense)], sparsity, TWPruneConfig(granularity=g)
            )
        step = steps[(g, sparsity)]
        tw = TiledTWMatrix.from_masks(
            dense, g, step.col_keeps[0], step.row_masks[0], dtype=np.dtype(dtype)
        )
        a = rng.standard_normal((m, BERT_K)).astype(dtype)
        tw_gemm(a, tw)  # build plan + group operands once, as a server would
        reps = 1 if m > 1024 else 3
        ref_ms = _best_of(lambda: tw_gemm_reference(a, tw), reps)
        bat_ms = _best_of(lambda: tw_gemm(a, tw), reps + 2)
        rows.append(
            {
                "m": m,
                "granularity": g,
                "sparsity": sparsity,
                "dtype": dtype,
                "n_tiles": tw.n_tiles,
                "reference_ms": round(ref_ms, 2),
                "batched_ms": round(bat_ms, 2),
                "speedup": round(ref_ms / bat_ms, 1),
            }
        )
        print(
            f"twgemm m={m:<5d} G={g:<3d} s={sparsity:.2f} {dtype:<7s} "
            f"ref {ref_ms:8.2f}ms  bat {bat_ms:7.2f}ms  {ref_ms / bat_ms:5.1f}x"
        )
    return {
        "scale": f"{BERT_K}x{BERT_N}",
        "configs": rows,
        "headline_speedup": max(r["speedup"] for r in rows),
    }


def bench_server(quick: bool) -> dict:
    from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
    from repro.runtime.server import ServerConfig, TWModelServer

    n_layers, k, g, sparsity = 4, 768, 16, 0.75
    rng = np.random.default_rng(5)
    weights = [rng.standard_normal((k, k)) for _ in range(n_layers)]
    cfg = TWPruneConfig(granularity=g)
    pruned = []
    for w in weights:
        step = tw_prune_step([np.abs(w)], sparsity, cfg)
        pruned.append((w, step.col_keeps[0], step.row_masks[0]))

    def build() -> TWModelServer:
        server = TWModelServer(ServerConfig(granularity=g, dtype="float32"))
        for w, ck, rm in pruned:
            server.add_layer(w, ck, rm)
        return server

    x = rng.standard_normal((32, k)).astype(np.float32)
    server = build()
    t0 = time.perf_counter()
    server.serve(x)
    cold_ms = (time.perf_counter() - t0) * 1e3
    warm_ms = _best_of(lambda: server.serve(x), 3 if quick else 5)
    assert server.stats.format_misses == n_layers
    assert server.stats.format_hits >= n_layers  # warm requests hit the cache

    n_req, req_rows = (16, 8) if quick else (64, 8)
    reqs = [rng.standard_normal((req_rows, k)).astype(np.float32) for _ in range(n_req)]
    seq_server = build()
    seq_server.warm()
    t0 = time.perf_counter()
    for r in reqs:
        seq_server.serve(r)
    seq_s = time.perf_counter() - t0
    mb_server = build()
    mb_server.warm()
    t0 = time.perf_counter()
    for r in reqs:
        mb_server.submit(r)
    mb_server.flush()
    mb_s = time.perf_counter() - t0
    total_rows = n_req * req_rows
    print(
        f"server cold {cold_ms:8.2f}ms  warm {warm_ms:7.2f}ms  "
        f"{cold_ms / warm_ms:5.1f}x amortized"
    )
    print(
        f"server seq {total_rows / seq_s:9.0f} rows/s  microbatched "
        f"{total_rows / mb_s:9.0f} rows/s  {seq_s / mb_s:5.1f}x"
    )
    return {
        "model": f"{n_layers}x({k}x{k})",
        "granularity": g,
        "sparsity": sparsity,
        "dtype": "float32",
        "cold_request_ms": round(cold_ms, 2),
        "warm_request_ms": round(warm_ms, 2),
        "cache_amortization": round(cold_ms / warm_ms, 1),
        "throughput": {
            "requests": n_req,
            "rows_per_request": req_rows,
            "sequential_rows_per_s": round(total_rows / seq_s),
            "microbatched_rows_per_s": round(total_rows / mb_s),
            "microbatch_speedup": round(seq_s / mb_s, 1),
        },
    }


def _sharded_case(blocks: int, n_req: int, g: int, sparsity: float, dtype: str) -> dict:
    import repro
    from repro.api import demo_layer_stack
    from repro.gpu.device import V100
    from repro.runtime.placement import Placement
    from repro.runtime.server import ServerConfig

    req_rows = 16
    weights, names = demo_layer_stack("bert", blocks=blocks, seed=6, dtype=np.float32)
    placements = {
        "single": Placement("single", (V100,)),
        "replicated_x2": Placement("replicated", (V100, V100)),
        "layer_sharded_x2": Placement("layer_sharded", (V100, V100)),
    }
    rng = np.random.default_rng(7)
    reqs = [
        rng.standard_normal((req_rows, weights[0].shape[0])).astype(dtype)
        for _ in range(n_req)
    ]
    rows = {}
    reference_out = None
    for label, placement in placements.items():
        model = repro.compile(
            weights, pattern="tw", sparsity=sparsity, granularity=g,
            dtype=np.dtype(dtype), names=names, placement=placement,
        )
        # cap waves at 4 requests so the queue splits into several waves —
        # otherwise one giant wave pins a replicated placement to one slot
        server = model.serve(ServerConfig(
            granularity=g, dtype=dtype, placement=placement,
            max_wave_rows=4 * req_rows,
        ))
        t0 = time.perf_counter()
        for r in reqs:
            server.submit(r)
        served = server.flush()
        wall_s = time.perf_counter() - t0
        out = served[0].output
        if reference_out is None:
            reference_out = out
        else:
            # placement must never change results, only where work runs
            assert np.array_equal(out, reference_out), label
        st = server.stats
        critical = st.critical_path_s()
        rows[label] = {
            "serve_ms": round(wall_s * 1e3, 2),
            "gemm_busy_ms": round(st.busy_s * 1e3, 2),
            "critical_path_ms": round(critical * 1e3, 2),
            "parallel_headroom": round(st.busy_s / critical, 2) if critical else 1.0,
            "rows_per_s": round(st.rows_per_s()),
            "device_gemms": dict(sorted(st.device_gemms.items())),
        }
        print(
            f"shard  x{blocks} {label:<17s} serve {wall_s * 1e3:8.2f}ms  busy "
            f"{st.busy_s * 1e3:7.2f}ms  critical {critical * 1e3:7.2f}ms  "
            f"headroom {rows[label]['parallel_headroom']:.2f}x"
        )
    return {
        "model": f"bert encoder x{blocks} (768/3072)",
        "requests": n_req,
        "rows_per_request": req_rows,
        "placements": rows,
    }


def bench_sharded_server(quick: bool) -> dict:
    g, sparsity, dtype = 64, 0.75, "float32"
    # the small case runs in BOTH sweeps so `check_bench --quick` (the
    # bench_gate pytest marker) still gates it against the full baseline;
    # rows are matched by the "model" identity field, never by position
    cases = [(1, 8)] if quick else [(1, 8), (2, 32)]
    return {
        "granularity": g,
        "sparsity": sparsity,
        "dtype": dtype,
        "configs": [
            _sharded_case(blocks, n_req, g, sparsity, dtype)
            for blocks, n_req in cases
        ],
    }


def _parallel_case(
    blocks: int, n_req: int, g: int, sparsity: float, dtype: str, pace: float
) -> dict:
    import repro
    from repro.api import demo_layer_stack
    from repro.gpu.device import V100
    from repro.runtime.placement import Placement
    from repro.runtime.server import ServerConfig, ServerStats

    req_rows = 16
    weights, names = demo_layer_stack("bert", blocks=blocks, seed=8, dtype=np.float32)
    placements = {
        "replicated_x2": Placement("replicated", (V100, V100)),
        "layer_sharded_x2": Placement("layer_sharded", (V100, V100)),
    }
    rng = np.random.default_rng(9)
    reqs = [
        rng.standard_normal((req_rows, weights[0].shape[0])).astype(dtype)
        for _ in range(n_req)
    ]
    rows = {}
    reference_out = None
    for label, placement in placements.items():
        model = repro.compile(
            weights, pattern="tw", sparsity=sparsity, granularity=g,
            dtype=np.dtype(dtype), names=names, placement=placement,
        )
        per_exec = {}
        for executor in ("inline", "threaded"):
            server = model.serve(ServerConfig(
                granularity=g, dtype=dtype, placement=placement,
                max_wave_rows=2 * req_rows,  # 2 requests per wave -> several
                executor=executor, pace=pace,  # waves stream through slots
            ))
            server.serve(reqs[0])  # warm: plans + group operands built
            server.stats = ServerStats()  # timed run starts from zero
            for r in reqs:
                server.submit(r)
            served = server.flush()
            out = served[0].output
            if reference_out is None:
                reference_out = out
            else:
                # neither the executor nor the placement may change results
                assert np.array_equal(out, reference_out), (label, executor)
            per_exec[executor] = server.stats
        inline, threaded = per_exec["inline"], per_exec["threaded"]
        speedup = inline.wall_time_s / threaded.wall_time_s
        rows[label] = {
            "inline_wall_ms": round(inline.wall_time_s * 1e3, 2),
            "threaded_wall_ms": round(threaded.wall_time_s * 1e3, 2),
            "wall_speedup_vs_inline": round(speedup, 2),
            "gemm_busy_ms": round(threaded.busy_s * 1e3, 2),
            "critical_path_ms": round(threaded.critical_path_s() * 1e3, 2),
            "modeled_headroom": round(
                threaded.busy_s / threaded.critical_path_s(), 2
            ) if threaded.critical_path_s() else 1.0,
            "parallel_efficiency": round(threaded.parallel_efficiency(), 2),
        }
        print(
            f"parall x{blocks} {label:<17s} inline {inline.wall_time_s * 1e3:8.2f}ms"
            f"  threaded {threaded.wall_time_s * 1e3:8.2f}ms  "
            f"{speedup:5.2f}x measured  "
            f"(headroom {rows[label]['modeled_headroom']:.2f}x, "
            f"efficiency {rows[label]['parallel_efficiency']:.2f})"
        )
    return {
        "model": f"bert encoder x{blocks} (768/3072)",
        "requests": n_req,
        "rows_per_request": req_rows,
        "placements": rows,
    }


def _process_parallel_case(blocks: int, n_req: int, g: int, sparsity: float,
                           dtype: str) -> dict:
    """Unpaced inline-vs-process wall-time on a replicated 2-slot placement.

    Unlike the paced rows above, nothing sleeps here: the speedup is real
    multi-core NumPy compute overlapping across worker processes, so the
    number is host-dependent (1 on a single-core box, by construction).
    The warm-up serve spawns the pool, publishes the arenas and builds
    every plan, so the timed window measures steady-state serving only.
    """
    import repro
    from repro.api import demo_layer_stack
    from repro.gpu.device import V100
    from repro.runtime.placement import Placement
    from repro.runtime.server import ServerConfig, ServerStats

    req_rows = 16
    weights, names = demo_layer_stack("bert", blocks=blocks, seed=8, dtype=np.float32)
    placement = Placement("replicated", (V100, V100))
    model = repro.compile(
        weights, pattern="tw", sparsity=sparsity, granularity=g,
        dtype=np.dtype(dtype), names=names, placement=placement,
    )
    rng = np.random.default_rng(9)
    reqs = [
        rng.standard_normal((req_rows, weights[0].shape[0])).astype(dtype)
        for _ in range(n_req)
    ]
    walls = {}
    reference_out = None
    for executor in ("inline", "process"):
        server = model.serve(ServerConfig(
            granularity=g, dtype=dtype, placement=placement,
            max_wave_rows=2 * req_rows, executor=executor, pace=0.0,
        ))
        try:
            # warm(): formats + plans built, and for the process pool a
            # blocking handshake with every worker, so interpreter boot
            # (~hundreds of ms per worker) never lands in the timed run.
            # The serves then place the arenas and fault the shm pages in.
            server.warm()
            for _ in placement.devices:
                server.serve(reqs[0])
            server.stats = ServerStats()  # timed run starts from zero
            for r in reqs:
                server.submit(r)
            served = server.flush()
            out = served[0].output
            if reference_out is None:
                reference_out = out
            else:
                assert np.array_equal(out, reference_out), executor
            walls[executor] = server.stats.wall_time_s
        finally:
            server.close()
    speedup = walls["inline"] / walls["process"]
    print(
        f"procex x{blocks} replicated_x2     inline {walls['inline'] * 1e3:8.2f}ms"
        f"  process {walls['process'] * 1e3:8.2f}ms  {speedup:5.2f}x unpaced"
    )
    return {
        "model": f"bert encoder x{blocks} (768/3072)",
        "requests": n_req,
        "rows_per_request": req_rows,
        "placement": "replicated_x2",
        "inline_wall_ms": round(walls["inline"] * 1e3, 2),
        "process_wall_ms": round(walls["process"] * 1e3, 2),
        "wall_speedup_vs_inline": round(speedup, 2),
    }


def bench_parallel_server(quick: bool) -> dict:
    import os

    g, sparsity, dtype, pace = 64, 0.75, "float32", 150.0
    # the small case runs in BOTH sweeps (same matching rule as
    # server_sharded) so the bench_gate quick run still gates it
    cases = [(1, 8)] if quick else [(1, 8), (2, 8)]
    configs = [
        _parallel_case(blocks, n_req, g, sparsity, dtype, pace)
        for blocks, n_req in cases
    ]
    process_configs = [
        _process_parallel_case(blocks, n_req, g, sparsity, dtype)
        for blocks, n_req in cases
    ]
    return {
        "granularity": g,
        "sparsity": sparsity,
        "dtype": dtype,
        "pace": pace,
        "note": (
            "wall-times are paced: every GEMM occupies its device slot for "
            "pace x the cost model's predicted device time, so the measured "
            "speedup reflects simulated-device overlap on any host; outputs "
            "are asserted bit-identical between executors"
        ),
        "configs": configs,
        "headline_wall_speedup": max(
            p["wall_speedup_vs_inline"]
            for c in configs
            for p in c["placements"].values()
        ),
        "process": {
            "pace": 0.0,
            "cpu_count": os.cpu_count(),
            "blas_threads_per_worker": 1,
            "note": (
                "unpaced: real multi-core compute speedup of the process "
                "executor (shared-memory weight arenas, BLAS pinned per "
                "worker) vs inline; the >=1.5x goal requires 2+ physical "
                "cores — on a 1-core host the expected value is <=1"
            ),
            "configs": process_configs,
            "headline_wall_speedup": max(
                c["wall_speedup_vs_inline"] for c in process_configs
            ),
        },
    }


def bench_faults_server(quick: bool) -> dict:
    """Recovery overhead of the fault-tolerant serving path (ISSUE 6)."""
    import repro
    from repro.api import demo_layer_stack
    from repro.runtime.faults import resolve_faults
    from repro.runtime.server import ServerConfig

    g, sparsity, dtype = 64, 0.75, "float32"
    n_req, req_rows = (4, 16) if quick else (8, 16)
    weights, names = demo_layer_stack("bert", blocks=1, seed=8, dtype=np.float32)
    model = repro.compile(
        weights, pattern="tw", sparsity=sparsity, granularity=g,
        dtype=np.dtype(dtype), names=names,
    )
    rng = np.random.default_rng(10)
    reqs = [
        rng.standard_normal((req_rows, weights[0].shape[0])).astype(dtype)
        for _ in range(n_req)
    ]

    # every scenario must end all-ok, so flush_wall_ms measures *recovery*
    # (retry/bisect work), not partial service.  The injector attaches
    # after the warm-up serve: the warm wave is index 0, the timed waves
    # start at 1, and fault budgets are untouched by the warm-up.
    scenarios = {
        # no injector at all: the baseline the overhead column compares to
        "fault_free": None,
        # two timed waves each fail once and retry at fresh wave indices
        "transient_exceptions": "exception:wave=1;exception:wave=2",
        # probabilistic 1 ms spikes: absorbed in-wave, never retried
        "latency_spikes": "latency:rate=0.5:duration=0.001:seed=1",
        # one wave burns the whole retry budget (3 fires), gets bisected,
        # and the exhausted max_fires budget lets the halves complete
        "retry_exhaustion_bisect": "exception:max_fires=3",
    }

    reps = 2 if quick else 3
    rows = {}
    base_ms = None
    for label, spec in scenarios.items():

        def once():
            server = model.serve(ServerConfig(
                granularity=g, dtype=dtype, max_wave_rows=2 * req_rows,
                max_retries=2,
            ))
            server.serve(reqs[0])  # warm: formats + plans built (wave 0)
            object.__setattr__(server.config, "faults", resolve_faults(spec))
            for r in reqs:
                server.submit(r)
            t0 = time.perf_counter()
            served = server.flush()
            ms = (time.perf_counter() - t0) * 1e3
            assert all(s.status == "ok" for s in served), label
            return ms, server.stats, server.config.faults

        best, stats, faults = min(
            (once() for _ in range(reps)), key=lambda t: t[0]
        )
        row = {
            "flush_wall_ms": round(best, 2),
            "retries": stats.retries,
            "requeues": stats.requeues,
            "poisoned": stats.poisoned,
            "faults_fired": faults.total_fired if faults else 0,
        }
        if label == "fault_free":
            base_ms = best
        else:
            row["overhead_vs_fault_free"] = round(best / base_ms, 2)
        rows[label] = row
        print(
            f"faults {label:<24s} flush {best:8.2f}ms  "
            f"retries {stats.retries}  fired {row['faults_fired']}"
        )
    return {
        "model": "bert encoder x1 (768/3072)",
        "granularity": g,
        "sparsity": sparsity,
        "dtype": dtype,
        "requests": n_req,
        "rows_per_request": req_rows,
        "executor": "inline",
        "note": (
            "all scenarios end all-ok: transient faults retry at fresh "
            "wave indices, exhausted budgets bisect; flush_wall_ms "
            "includes the recovery work"
        ),
        "scenarios": rows,
    }


def bench_ingress_server(quick: bool) -> dict:
    """Continuous-batching ingress: latency percentiles + saturation (ISSUE 8).

    Two traffic shapes through the asyncio :class:`ServingLoop` over a
    warm inline server: a *closed loop* (4 back-to-back clients) whose
    achieved rate is the saturation throughput, then a seeded *open
    loop* (Poisson and fixed arrivals) offered at ~40% of that
    saturation rate, where percentile latencies measure steady-state
    service rather than unbounded backlog growth.  Every request must
    end ``ok``; latencies are enqueue→terminal (ingress queue wait
    included — the ISSUE 8 accounting fix).
    """
    import asyncio

    import repro
    from repro.api import demo_layer_stack
    from repro.runtime.ingress import ServingLoop
    from repro.runtime.loadgen import run_closed_loop, run_open_loop
    from repro.runtime.server import ServerConfig, ServerStats

    g, sparsity, dtype = 64, 0.75, "float32"
    req_rows = 8
    clients, per_client = (4, 6) if quick else (4, 16)
    duration_s = 0.5 if quick else 2.0
    weights, names = demo_layer_stack("bert", blocks=1, seed=8, dtype=np.float32)
    model = repro.compile(
        weights, pattern="tw", sparsity=sparsity, granularity=g,
        dtype=np.dtype(dtype), names=names,
    )
    rng = np.random.default_rng(12)
    xs = [
        rng.standard_normal((req_rows, weights[0].shape[0])).astype(dtype)
        for _ in range(32)
    ]

    def make(i: int) -> np.ndarray:
        return xs[i % len(xs)]

    def new_server():
        server = model.serve(ServerConfig(
            granularity=g, dtype=dtype, max_wave_rows=8 * req_rows,
        ))
        server.serve(xs[0])  # warm: formats + plans built
        server.stats = ServerStats()  # measure traffic only
        return server

    async def closed_run():
        server = new_server()
        try:
            async with ServingLoop(server) as loop:
                return await run_closed_loop(
                    loop, make, clients=clients, requests_per_client=per_client
                )
        finally:
            server.close()

    sat = asyncio.run(closed_run())
    assert sat.all_ok, f"saturation run not all-ok: {sat.statuses}"
    print(
        f"ingress closed loop ({clients} clients): "
        f"{sat.achieved_rps:8.1f} req/s  p99 {sat.latency_ms['p99']:.2f}ms"
    )

    offered_rps = max(20.0, round(0.4 * sat.achieved_rps, 1))
    open_rows = {}
    for arrival in ("poisson", "fixed"):

        async def open_run():
            server = new_server()
            try:
                async with ServingLoop(server) as loop:
                    res = await run_open_loop(
                        loop, make, rate=offered_rps, duration_s=duration_s,
                        arrival=arrival, seed=13,
                    )
                    return res, loop.stats_record()
            finally:
                server.close()

        res, rec = asyncio.run(open_run())
        assert res.all_ok, f"open loop ({arrival}) not all-ok: {res.statuses}"
        open_rows[arrival] = {
            "offered_rps": offered_rps,
            "achieved_rps": round(res.achieved_rps, 1),
            "p50_ms": res.latency_ms["p50"],
            "p95_ms": res.latency_ms["p95"],
            "p99_ms": res.latency_ms["p99"],
            # share of mean latency spent waiting (not a gated timing:
            # at 40% load the absolute wait is sub-ms and too noisy)
            "queue_wait_share": round(
                res.queue_wait_ms["mean"] / max(res.latency_ms["mean"], 1e-9), 3
            ),
            "wave_occupancy": rec["waves"]["occupancy"],
        }
        print(
            f"ingress open loop {arrival:<8s} @ {offered_rps:6.1f} req/s: "
            f"p50 {res.latency_ms['p50']:.2f}  p95 {res.latency_ms['p95']:.2f}  "
            f"p99 {res.latency_ms['p99']:.2f}ms"
        )
    return {
        "model": "bert encoder x1 (768/3072)",
        "granularity": g,
        "sparsity": sparsity,
        "dtype": dtype,
        "rows_per_request": req_rows,
        "executor": "inline",
        "saturation": {
            "clients": clients,
            "requests": sat.requests,
            "requests_per_s": round(sat.achieved_rps, 1),
            "rows_per_s": round(sat.rows_per_s, 1),
            "p50_ms": sat.latency_ms["p50"],
            "p95_ms": sat.latency_ms["p95"],
            "p99_ms": sat.latency_ms["p99"],
        },
        "open_loop": open_rows,
        "note": (
            "closed loop saturates (achieved rate = saturation "
            "throughput); open loops offer ~40% of that rate so "
            "percentiles measure steady-state service. Latency is "
            "enqueue→terminal, ingress queue wait included."
        ),
    }


def bench_http_server(quick: bool) -> dict:
    """HTTP serving front vs in-process ingress (ISSUE 10).

    The same warm inline server and the same traffic shapes as
    ``server_ingress``, measured through two transports: submitting
    straight into the :class:`ServingLoop`, and over real loopback
    sockets through :class:`NetServer` + pooled keep-alive
    ``HttpLoadTransport`` clients.  Closed loops give each transport's
    saturation throughput; open Poisson loops at ~40% of the *HTTP*
    saturation rate (the lower of the two) give steady-state
    percentiles at an offered rate both transports can sustain.  HTTP
    latencies are client-observed wall times, so the comparison columns
    are the honest cost of the network hop — reported as ratios, not
    timings, because sub-ms loopback deltas are host noise.
    """
    import asyncio

    import repro
    from repro.api import demo_layer_stack
    from repro.runtime.ingress import ServingLoop
    from repro.runtime.loadgen import run_closed_loop, run_open_loop
    from repro.runtime.netclient import HttpLoadTransport
    from repro.runtime.netserve import NetServer
    from repro.runtime.server import ServerConfig, ServerStats

    g, sparsity, dtype = 64, 0.75, "float32"
    req_rows = 8
    clients, per_client = (4, 6) if quick else (4, 16)
    duration_s = 0.5 if quick else 2.0
    weights, names = demo_layer_stack("bert", blocks=1, seed=8, dtype=np.float32)
    model = repro.compile(
        weights, pattern="tw", sparsity=sparsity, granularity=g,
        dtype=np.dtype(dtype), names=names,
    )
    rng = np.random.default_rng(12)
    xs = [
        rng.standard_normal((req_rows, weights[0].shape[0])).astype(dtype)
        for _ in range(32)
    ]

    def make(i: int) -> np.ndarray:
        return xs[i % len(xs)]

    def new_server():
        server = model.serve(ServerConfig(
            granularity=g, dtype=dtype, max_wave_rows=8 * req_rows,
        ))
        server.serve(xs[0])  # warm: formats + plans built
        server.stats = ServerStats()  # measure traffic only
        return server

    def inproc_run(shape, **kw):
        async def go():
            server = new_server()
            try:
                async with ServingLoop(server) as loop:
                    if shape == "closed":
                        return await run_closed_loop(
                            loop, make, clients=clients,
                            requests_per_client=per_client,
                        )
                    return await run_open_loop(
                        loop, make, arrival="poisson", seed=13, **kw
                    )
            finally:
                server.close()

        return asyncio.run(go())

    def http_run(shape, **kw):
        server = new_server()
        net = NetServer(ServingLoop(server), port=0, owns_loop=True)
        try:
            with net:
                async def go():
                    async with HttpLoadTransport(
                        "127.0.0.1", net.port, connections=clients
                    ) as transport:
                        if shape == "closed":
                            return await run_closed_loop(
                                transport, make, clients=clients,
                                requests_per_client=per_client,
                            )
                        return await run_open_loop(
                            transport, make, arrival="poisson", seed=13, **kw
                        )

                return asyncio.run(go())
        finally:
            server.close()

    rows = {}
    for transport, runner in (("inproc", inproc_run), ("http", http_run)):
        sat = runner("closed")
        assert sat.all_ok, f"{transport} saturation not all-ok: {sat.statuses}"
        rows[transport] = {"saturation_rps": round(sat.achieved_rps, 1)}
        print(
            f"http bench closed loop [{transport:>6s}]: "
            f"{sat.achieved_rps:8.1f} req/s  p99 {sat.latency_ms['p99']:.2f}ms"
        )

    offered_rps = max(20.0, round(0.4 * rows["http"]["saturation_rps"], 1))
    for transport, runner in (("inproc", inproc_run), ("http", http_run)):
        res = runner("open", rate=offered_rps, duration_s=duration_s)
        assert res.all_ok, f"{transport} open loop not all-ok: {res.statuses}"
        rows[transport].update({
            "offered_rps": offered_rps,
            "achieved_rps": round(res.achieved_rps, 1),
            "p50_ms": res.latency_ms["p50"],
            "p95_ms": res.latency_ms["p95"],
            "p99_ms": res.latency_ms["p99"],
        })
        print(
            f"http bench open loop   [{transport:>6s}] @ {offered_rps:6.1f} "
            f"req/s: p50 {res.latency_ms['p50']:.2f}  "
            f"p95 {res.latency_ms['p95']:.2f}  p99 {res.latency_ms['p99']:.2f}ms"
        )

    # comparison columns as ratios: not *_ms so the BENCH gate doesn't
    # fail on sub-ms loopback jitter between regenerations
    overhead = {
        "saturation_fraction_of_inproc": round(
            rows["http"]["saturation_rps"]
            / max(rows["inproc"]["saturation_rps"], 1e-9), 3
        ),
        "p50_ratio_vs_inproc": round(
            rows["http"]["p50_ms"] / max(rows["inproc"]["p50_ms"], 1e-9), 2
        ),
        "p99_ratio_vs_inproc": round(
            rows["http"]["p99_ms"] / max(rows["inproc"]["p99_ms"], 1e-9), 2
        ),
    }
    return {
        "model": "bert encoder x1 (768/3072)",
        "granularity": g,
        "sparsity": sparsity,
        "dtype": dtype,
        "rows_per_request": req_rows,
        "executor": "inline",
        "connections": clients,
        "transports": rows,
        "network_overhead": overhead,
        "note": (
            "same server + traffic as server_ingress, measured "
            "in-process and over loopback HTTP (binary wire format, "
            "pooled keep-alive connections). HTTP latency is "
            "client-observed wall time; overhead columns are ratios so "
            "the gate tracks structure, not loopback jitter."
        ),
    }


#: section name -> bench function; ``--sections`` validates against this
def bench_mixed_precision(quick: bool) -> dict:
    """Mixed-precision TW GEMM at BERT-base FFN serving shapes.

    ``batched_ms`` is honest host wall-clock: NumPy's BLAS has no
    reduced-precision kernels, so fp16/int8 run at ~fp32 speed (fp16 often
    slower — it upcasts per group to accumulate in fp32).  The *device*
    story the paper targets lives in ``modeled_device_us``: the cost
    model's dtype axis (tensor-core calibration for fp16/int8, element
    size scaling the memory legs), where reduced precision wins ≥1.3x.
    The memory win (``payload_compression_vs_fp32``) is real on any host.
    """
    from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
    from repro.formats.tiled import TiledTWMatrix
    from repro.gpu.tw_kernel import TWExecutionOptions, tw_gemm_cost
    from repro.kernels.masked import tw_gemm
    from repro.runtime.engine import _DTYPE_BYTES, engine_for_dtype

    g, sparsity = 64, 0.75
    ms = [128] if quick else [128, 512]
    dtypes = ["float32", "float16", "int8"]
    rng = np.random.default_rng(7)
    dense = rng.standard_normal((BERT_K, BERT_N))
    step = tw_prune_step([np.abs(dense)], sparsity, TWPruneConfig(granularity=g))
    tws = {
        d: TiledTWMatrix.from_masks(
            dense, g, step.col_keeps[0], step.row_masks[0], dtype=np.dtype(d)
        )
        for d in ["float64", *dtypes]
    }
    fp32_payload = sum(t.data.nbytes for t in tws["float32"].tiles)
    rows = []
    for m in ms:
        a64 = rng.standard_normal((m, BERT_K))
        want = tw_gemm(a64, tws["float64"])
        scale_ref = float(np.abs(want).max())
        modeled = {}
        for d in dtypes:
            opts = TWExecutionOptions(
                engine=engine_for_dtype(d), dtype_bytes=_DTYPE_BYTES[d]
            )
            modeled[d] = tw_gemm_cost(m, tws[d], options=opts).total_us
        for d in dtypes:
            tw = tws[d]
            act = "float32" if d == "int8" else d
            a = a64.astype(act)
            tw_gemm(a, tw)  # warm plan + operand memos, as a server would
            bat_ms = _best_of(lambda: tw_gemm(a, tw), 5)
            got = tw_gemm(a, tw).astype(np.float64)
            payload = sum(t.data.nbytes for t in tw.tiles)
            rows.append(
                {
                    "m": m,
                    "granularity": g,
                    "sparsity": sparsity,
                    "dtype": d,
                    "batched_ms": round(bat_ms, 2),
                    "modeled_device_us": round(modeled[d], 1),
                    "modeled_speedup_vs_fp32": round(
                        modeled["float32"] / modeled[d], 2
                    ),
                    "payload_bytes": payload,
                    "payload_compression_vs_fp32": round(fp32_payload / payload, 2),
                    "max_rel_err_vs_float64": float(
                        np.abs(got - want).max() / scale_ref
                    ),
                }
            )
            print(
                f"mixedp m={m:<4d} {d:<8s} bat {bat_ms:6.2f}ms  "
                f"modeled {modeled[d]:8.1f}us "
                f"({modeled['float32'] / modeled[d]:4.2f}x vs fp32)  "
                f"payload {payload / 1e6:5.2f}MB"
            )
    return {
        "scale": f"{BERT_K}x{BERT_N} G={g} s={sparsity}",
        "configs": rows,
        "headline_modeled_speedup_vs_fp32": max(
            r["modeled_speedup_vs_fp32"] for r in rows
        ),
        "note": (
            "batched_ms is host wall-clock (NumPy BLAS has no "
            "reduced-precision kernels, so dtypes tie); "
            "modeled_device_us prices the same GEMM on the simulated "
            "V100's dtype axis, where fp16/int8 clear the 1.3x bar"
        ),
    }


def bench_fusion(quick: bool) -> dict:
    """Fused epilogues vs their unfused ``*_reference`` compositions.

    BERT-base serving shapes: the FFN activation tail (``m x 3072``
    bias+GeLU) and the block tail (``m x 768`` layernorm variants).  The
    fused consumers run in-place ufunc chains (~2 temporaries); the
    references compose the standalone kernels (~9 temporaries), which is
    exactly the memory traffic fusion removes.  Float64 outputs are
    asserted bit-identical before timing.
    """
    import dataclasses

    from repro.kernels.fusion import apply_epilogue, resolve_epilogue_spec

    ms = [128] if quick else [128, 512]
    cases = [
        ("bias_gelu", BERT_N, False),
        ("bias_layernorm", BERT_K, False),
        ("dropout_residual_layernorm", BERT_K, True),
    ]
    rng = np.random.default_rng(9)
    rows = []
    for m in ms:
        for name, n, needs_res in cases:
            spec = resolve_epilogue_spec(name, n=n)
            spec = dataclasses.replace(
                spec,
                bias=rng.standard_normal(n),
                gamma=1.0 + 0.1 * rng.standard_normal(n),
                beta=0.1 * rng.standard_normal(n),
            )
            y = rng.standard_normal((m, n))
            residual = rng.standard_normal((m, n)) if needs_res else None
            fused = apply_epilogue(y, spec, residual=residual)
            ref = apply_epilogue(y, spec, residual=residual, reference=True)
            identical = bool(np.array_equal(fused, ref))
            fused_ms = _best_of(
                lambda: apply_epilogue(y, spec, residual=residual), 5
            )
            ref_ms = _best_of(
                lambda: apply_epilogue(
                    y, spec, residual=residual, reference=True
                ),
                5,
            )
            rows.append(
                {
                    "m": m,
                    "shape": f"{m}x{n}",
                    "epilogue": name,
                    "fused_ms": round(fused_ms, 3),
                    "reference_unfused_ms": round(ref_ms, 3),
                    "speedup_vs_unfused": round(ref_ms / fused_ms, 2),
                    "bit_identical_float64": identical,
                }
            )
            print(
                f"fusion m={m:<4d} {name:<27s} fused {fused_ms:6.3f}ms  "
                f"unfused {ref_ms:6.3f}ms  {ref_ms / fused_ms:4.2f}x  "
                f"{'bit-identical' if identical else 'MISMATCH'}"
            )
    if not all(r["bit_identical_float64"] for r in rows):
        raise AssertionError("fused epilogue diverged from its float64 oracle")
    return {
        "scale": f"BERT-base tails ({BERT_K}/{BERT_N} wide)",
        "configs": rows,
        "headline_speedup": max(r["speedup_vs_unfused"] for r in rows),
    }


SECTIONS = {
    "prune_step": bench_prune,
    "spmm": bench_spmm,
    "transpose": bench_transpose,
    "formats": bench_formats,
    "end_to_end": bench_end_to_end,
    "tw_gemm": bench_tw_gemm,
    "mixed_precision": bench_mixed_precision,
    "fusion": bench_fusion,
    "server": bench_server,
    "server_sharded": bench_sharded_server,
    "server_parallel": bench_parallel_server,
    "server_faults": bench_faults_server,
    "server_ingress": bench_ingress_server,
    "server_http": bench_http_server,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweep")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json",
    )
    parser.add_argument(
        "--sections",
        type=str,
        default=None,
        metavar="A,B,...",
        help=(
            "run only these sections (comma-separated, from: "
            + ", ".join(SECTIONS)
            + ") and merge them into the existing --out file"
        ),
    )
    args = parser.parse_args()

    if args.sections is None:
        selected = list(SECTIONS)
    else:
        selected = [s.strip() for s in args.sections.split(",") if s.strip()]
        unknown = sorted(set(selected) - set(SECTIONS))
        if unknown:
            parser.error(
                f"unknown sections: {', '.join(unknown)} "
                f"(choose from: {', '.join(SECTIONS)})"
            )
        if not selected:
            parser.error("--sections given but no section names parsed")

    # a partial run refreshes sections in place so the out file stays a
    # complete record; a full run starts from scratch
    record: dict = {}
    if args.sections is not None and args.out.exists():
        record = json.loads(args.out.read_text())
    record["meta"] = {
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "note": (
            "reference_* columns time the seed scalar implementations "
            "(kept in-tree as oracles); vectorized_* time the production "
            "paths. Wall-clock, best-of-N, single core."
        ),
    }
    if args.sections is not None:
        record["meta"]["sections"] = selected
    for name in SECTIONS:  # canonical order regardless of --sections order
        if name in selected:
            record[name] = SECTIONS[name](args.quick)
    args.out.write_text(json.dumps(record, indent=1) + "\n")
    print(f"wrote {args.out} ({len(selected)}/{len(SECTIONS)} sections)")


if __name__ == "__main__":
    main()
