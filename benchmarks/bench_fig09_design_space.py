"""Fig. 9 — the TW granularity design space.

(a) accuracy vs sparsity for EW, TW at several granularities, and BW at
    several block sizes (trained MiniBERT, real prune + fine-tune);
(b) normalised latency vs sparsity for TW G∈{64,128} and BW {32,64} on
    BERT-base shapes (simulated V100 tensor cores).

Paper shape: all patterns hold accuracy to ~50 % sparsity ("BERT is at
least 50 % redundant"); past that EW ≥ TW(small G) ≥ TW(large G) ≥ BW;
TW-128 breaks even around 40 % sparsity and reaches ~2.26× at 75 %, while
BW-64 needs >90 % sparsity to beat dense.
"""

import numpy as np

from repro.analysis import ExperimentRecord, format_table, save_results
from repro.experiments import sparsity_sweep

ACC_SPARSITIES = (0.5, 0.75, 0.9)
LAT_SPARSITIES = (0.0, 0.2, 0.4, 0.6, 0.75, 0.9, 0.99)


def test_fig09a_accuracy(benchmark, accuracy_cache, results_dir):
    configs = [
        ("EW", "ew", {}),
        ("TW G=32-eq", "tw", {"granularity": 2}),
        ("TW G=64-eq", "tw", {"granularity": 4}),
        ("TW G=128-eq", "tw", {"granularity": 8}),
        ("BW 32-eq", "bw", {"block_shape": (4, 4)}),
        ("BW 64-eq", "bw", {"block_shape": (8, 8)}),
    ]

    def sweep():
        out = {}
        for label, pattern, kw in configs:
            out[label] = [
                accuracy_cache.point("mnli", pattern, s, **kw) for s in ACC_SPARSITIES
            ]
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = accuracy_cache.baseline("mnli")

    rows = [[label] + vals for label, vals in series.items()]
    print(f"\nFig. 9a: accuracy vs sparsity (dense baseline {baseline:.3f})")
    print(format_table(["config"] + [f"s={s}" for s in ACC_SPARSITIES], rows))

    # paper shape assertions (with tolerance for mini-model noise):
    # 1. at 50% everything is close to dense
    for label in series:
        assert series[label][0] > baseline - 0.08, f"{label} collapsed at 50%"
    # 2. at 90%, EW >= the coarsest BW
    assert series["EW"][-1] >= series["BW 64-eq"][-1] - 0.03
    # 3. TW at its largest granularity stays above the coarsest BW at 90%
    assert series["TW G=128-eq"][-1] >= series["BW 64-eq"][-1] - 0.03

    save_results(
        ExperimentRecord(
            experiment="fig09a",
            description="Accuracy vs sparsity across granularities (MNLI-like)",
            series={"sparsities": list(ACC_SPARSITIES), "dense": baseline, **series},
            paper_anchors={
                "<=50% sparsity is free": True,
                "TW-128 drop at 75% vs EW": 0.009,
                "BW-64 drop at 75%": 0.04,
            },
            notes="Mini granularities labelled by full-size equivalent "
                  "(G/dim ratio preserved: dim 48 vs 768).",
        ),
        results_dir,
    )


def test_fig09b_latency(benchmark, results_dir):
    def sweep():
        return {
            "TW G=64": sparsity_sweep("bert", "tw", LAT_SPARSITIES, granularity=64),
            "TW G=128": sparsity_sweep("bert", "tw", LAT_SPARSITIES, granularity=128),
            "BW 32x32": sparsity_sweep("bert", "bw", LAT_SPARSITIES, block_size=32),
            "BW 64x64": sparsity_sweep("bert", "bw", LAT_SPARSITIES, block_size=64),
        }

    series = benchmark(sweep)
    rows = [
        [label] + [f"{1.0 / v:.2f}" for v in vals]  # normalised latency = 1/speedup
        for label, vals in series.items()
    ]
    print("\nFig. 9b: normalised latency (dense = 1.0) vs sparsity")
    print(format_table(["config"] + [f"s={s}" for s in LAT_SPARSITIES], rows))

    tw128 = series["TW G=128"]
    # paper anchors: TW-128 ~2.26x at 75%; G=64 slower than G=128;
    # BW-64 beats dense only at very high sparsity
    i75 = LAT_SPARSITIES.index(0.75)
    assert 1.7 <= tw128[i75] <= 2.6
    assert series["TW G=64"][i75] < tw128[i75]
    i60 = LAT_SPARSITIES.index(0.6)
    assert series["BW 64x64"][i60] < 1.0
    assert series["BW 64x64"][LAT_SPARSITIES.index(0.99)] > 1.0

    save_results(
        ExperimentRecord(
            experiment="fig09b",
            description="Normalised latency vs sparsity (BERT-base shapes, TC)",
            series={"sparsities": list(LAT_SPARSITIES),
                    **{k: [1.0 / v for v in vals] for k, vals in series.items()}},
            paper_anchors={"TW-128 at 75%": 1 / 2.26, "breakeven": 0.40,
                           "measured TW-128 at 75%": 1 / tw128[i75]},
            notes="Model break-even sits near 25-30% vs the paper's ~40% "
                  "(documented deviation, see EXPERIMENTS.md).",
        ),
        results_dir,
    )
