"""Ablations of the design choices DESIGN.md calls out.

Latency side (simulator, BERT-base shapes at 75 % TW):

- batching on/off × streams on/off (Fig. 7 steps 3-4);
- transpose on/off (Fig. 7 step 2);

Accuracy side (trained MiniBERT at 75 %):

- apriori tuning on/off (Algorithm 2's contribution);
- tile reorganisation on/off (paper §IV-A pruning order);
- column/row budget split (the implicit hyper-parameter our DESIGN.md
  documents; 0.5 is the default).
"""

from repro.analysis import ExperimentRecord, format_table, save_results
from repro.core.tile_sparsity import TWPruneConfig
from repro.experiments import gemm_speedup
from repro.runtime import EngineConfig, TransposePlan

SPARSITY = 0.75


def test_ablation_execution_optimizations(benchmark, results_dir):
    def sweep():
        out = {}
        for batching in (True, False):
            for streams in (True, False):
                cfg = EngineConfig(batching=batching, streams=streams)
                out[f"batching={batching},streams={streams}"] = gemm_speedup(
                    "bert", "tw", SPARSITY, config=cfg
                )
        out["transpose=False"] = gemm_speedup(
            "bert", "tw", SPARSITY,
            config=EngineConfig(transpose=TransposePlan("none")),
        )
        return out

    series = benchmark(sweep)
    print("\nAblation: execution optimisations (TW at 75%, BERT shapes)")
    print(format_table(["config", "speedup"], [[k, v] for k, v in series.items()]))

    full = series["batching=True,streams=True"]
    naive = series["batching=False,streams=False"]
    assert full >= naive, "the optimised configuration must not lose"
    assert series["transpose=False"] < full, "untransposed must be slower"

    save_results(
        ExperimentRecord(
            experiment="ablation_execution",
            description="Batching/streams/transpose ablation at 75% TW",
            series=series,
            paper_anchors={"Fig.7 optimisations all contribute": True},
        ),
        results_dir,
    )


def test_ablation_pruning_algorithm(benchmark, accuracy_cache, results_dir):
    def sweep():
        out = {
            "default (apriori, reorg, split=0.5)": accuracy_cache.point(
                "mnli", "tw", SPARSITY, granularity=8
            ),
            "no apriori": accuracy_cache.point(
                "mnli", "tw", SPARSITY, granularity=8, apriori=False
            ),
            "no reorganisation": accuracy_cache.point(
                "mnli", "tw", SPARSITY, granularity=8,
                prune_config=TWPruneConfig(granularity=8, reorganize=False),
            ),
            "columns only (split=1.0)": accuracy_cache.point(
                "mnli", "tw", SPARSITY, granularity=8,
                prune_config=TWPruneConfig(granularity=8, col_row_split=1.0),
            ),
            "rows only (split=0.0)": accuracy_cache.point(
                "mnli", "tw", SPARSITY, granularity=8,
                prune_config=TWPruneConfig(granularity=8, col_row_split=0.0),
            ),
        }
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = accuracy_cache.baseline("mnli")
    rows = [[k, v, baseline - v] for k, v in series.items()]
    print(f"\nAblation: pruning algorithm choices at {SPARSITY:.0%} "
          f"(dense {baseline:.3f})")
    print(format_table(["config", "accuracy", "drop"], rows))

    # every variant must stay a working model (well above 1/3 chance)
    for label, acc in series.items():
        assert acc > 0.45, f"{label} collapsed"

    save_results(
        ExperimentRecord(
            experiment="ablation_pruning",
            description="Apriori / reorganisation / budget-split ablation",
            series={**series, "dense": baseline},
            paper_anchors={"apriori reduces accuracy loss": True},
        ),
        results_dir,
    )
