"""Standalone load-generator harness for the async serving ingress.

Drives a demo model through :class:`repro.runtime.ingress.ServingLoop`
with the seeded traffic shapes from :mod:`repro.runtime.loadgen` — the
same machinery `repro serve --continuous` and the ``server_ingress``
BENCH section use — and prints (or writes) the JSON-ready result:

    PYTHONPATH=src python benchmarks/loadgen.py --mode open \\
        --rate 100 --duration 2 --arrival poisson
    PYTHONPATH=src python benchmarks/loadgen.py --mode closed \\
        --clients 8 --requests-per-client 16 --executor threaded

Open loop: requests arrive on a seeded Poisson/fixed schedule
regardless of completions, so percentiles reflect real queueing.
Closed loop: N clients issue back-to-back requests; the achieved rate
is the saturation throughput.  ``--mode both`` runs the closed loop
first and offers the open loop at ``--load-fraction`` of the measured
saturation rate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

import numpy as np

try:
    import repro
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro

from repro.api import demo_layer_stack
from repro.runtime.ingress import ServingLoop
from repro.runtime.loadgen import ARRIVALS, run_closed_loop, run_open_loop


def build_loop(args) -> tuple[ServingLoop, list[np.ndarray]]:
    """Compile the demo model and wrap a fresh server in a ServingLoop."""
    weights, names = demo_layer_stack(
        args.model, scale=args.scale, blocks=args.blocks, seed=args.seed
    )
    model = repro.compile(
        weights,
        pattern="tw",
        sparsity=args.sparsity,
        granularity=args.granularity,
        dtype=np.dtype(args.dtype),
        names=names,
    )
    loop = model.serve_async(
        executor=args.executor,
        stats_interval_s=args.stats_interval_s,
        max_wave_rows=args.max_wave_rows,
    )
    loop.server.warm()
    rng = np.random.default_rng(args.seed + 1)
    xs = [
        rng.standard_normal((args.rows, weights[0].shape[0])).astype(args.dtype)
        for _ in range(32)
    ]
    return loop, xs


async def run(args) -> dict:
    record: dict = {}
    if args.mode in ("closed", "both"):
        loop, xs = build_loop(args)
        async with loop:
            closed = await run_closed_loop(
                loop,
                lambda i: xs[i % len(xs)],
                clients=args.clients,
                requests_per_client=args.requests_per_client,
            )
        record["closed"] = closed.record()
        if args.mode == "both":
            args.rate = round(
                max(1.0, args.load_fraction * closed.achieved_rps), 1
            )
    if args.mode in ("open", "both"):
        loop, xs = build_loop(args)  # fresh server: no cross-shape carryover
        async with loop:
            opened = await run_open_loop(
                loop,
                lambda i: xs[i % len(xs)],
                rate=args.rate,
                duration_s=args.duration,
                arrival=args.arrival,
                seed=args.seed + 2,
                deadline_s=args.deadline_s,
            )
            record["server"] = loop.stats_record()
        record["open"] = opened.record()
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="bert", choices=["bert", "vgg", "nmt"])
    parser.add_argument("--mode", default="both", choices=["open", "closed", "both"])
    parser.add_argument("--rate", type=float, default=50.0,
                        help="offered req/s (open loop)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="offered-load duration in seconds (open loop)")
    parser.add_argument("--arrival", default="poisson", choices=list(ARRIVALS))
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent callers (closed loop)")
    parser.add_argument("--requests-per-client", type=int, default=16)
    parser.add_argument("--load-fraction", type=float, default=0.4,
                        help="open-loop rate as a fraction of measured "
                             "saturation (--mode both)")
    parser.add_argument("--deadline-s", type=float, default=None)
    parser.add_argument("--executor", default="inline",
                        choices=["inline", "threaded", "process"])
    parser.add_argument("--sparsity", type=float, default=0.75)
    parser.add_argument("--granularity", "-G", type=int, default=64)
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--blocks", type=int, default=1)
    parser.add_argument("--rows", type=int, default=8,
                        help="activation rows per request")
    parser.add_argument("--max-wave-rows", type=int, default=None,
                        help="ingress admission cap (default: server config)")
    parser.add_argument("--dtype", default="float32")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--stats-interval-s", type=float, default=0.0)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the record to PATH")
    args = parser.parse_args()

    record = asyncio.run(run(args))
    text = json.dumps(record, indent=2, sort_keys=True)
    print(text)
    if args.json:
        args.json.write_text(text + "\n")
    ok = all(
        r.get("statuses", {}).get("ok", 0) == r.get("requests", 0)
        for key, r in record.items()
        if key in ("open", "closed")
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
