"""Standalone load-generator harness for the serving ingress.

Drives a demo model with the seeded traffic shapes from
:mod:`repro.runtime.loadgen` — the same machinery ``repro serve
--continuous``, the ``server_ingress``/``server_http`` BENCH sections
and the CI smoke jobs use — and prints (or writes) the JSON-ready
result.  Two transports:

- ``--transport inproc`` (default): submit straight into a
  :class:`~repro.runtime.ingress.ServingLoop` in this process.
- ``--transport http``: the same load over real sockets through
  :class:`~repro.runtime.netclient.HttpLoadTransport`.  With ``--url``
  it drives an already-running ``repro serve --http`` server (the demo
  model flags must match the server's so request widths agree);
  without, it self-hosts one on an ephemeral port for the run.

    PYTHONPATH=src python benchmarks/loadgen.py --mode open \\
        --rate 100 --duration 2 --arrival poisson
    PYTHONPATH=src python benchmarks/loadgen.py --transport http \\
        --url http://127.0.0.1:8080 --mode open --rate 40 --duration 5

Open loop: requests arrive on a seeded Poisson/fixed schedule
regardless of completions, so percentiles reflect real queueing.
Closed loop: N clients issue back-to-back requests; the achieved rate
is the saturation throughput.  ``--mode both`` runs the closed loop
first and offers the open loop at ``--load-fraction`` of the measured
saturation rate.  Over HTTP, latencies are client-observed wall times
— network overhead included.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

import numpy as np

try:
    import repro
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro

from repro.api import demo_layer_stack
from repro.runtime.ingress import ServingLoop
from repro.runtime.loadgen import ARRIVALS, run_closed_loop, run_open_loop
from repro.runtime.netclient import HttpLoadTransport


def request_pool(args) -> list[np.ndarray]:
    """The seeded request set; derived from flags only, so a remote
    ``repro serve --http`` started with the same model flags agrees on K."""
    weights, _names = demo_layer_stack(
        args.model, scale=args.scale, blocks=args.blocks, seed=args.seed
    )
    rng = np.random.default_rng(args.seed + 1)
    return [
        rng.standard_normal((args.rows, weights[0].shape[0])).astype(args.dtype)
        for _ in range(32)
    ]


def compile_demo(args):
    weights, names = demo_layer_stack(
        args.model, scale=args.scale, blocks=args.blocks, seed=args.seed
    )
    return repro.compile(
        weights,
        pattern="tw",
        sparsity=args.sparsity,
        granularity=args.granularity,
        dtype=np.dtype(args.dtype),
        names=names,
    )


def build_loop(args) -> tuple[ServingLoop, list[np.ndarray]]:
    """Compile the demo model and wrap a fresh server in a ServingLoop."""
    loop = compile_demo(args).serve_async(
        executor=args.executor,
        stats_interval_s=args.stats_interval_s,
        max_wave_rows=args.max_wave_rows,
    )
    loop.server.warm()
    return loop, request_pool(args)


async def run(args) -> dict:
    record: dict = {}
    if args.mode in ("closed", "both"):
        loop, xs = build_loop(args)
        async with loop:
            closed = await run_closed_loop(
                loop,
                lambda i: xs[i % len(xs)],
                clients=args.clients,
                requests_per_client=args.requests_per_client,
            )
        record["closed"] = closed.record()
        if args.mode == "both":
            args.rate = round(
                max(1.0, args.load_fraction * closed.achieved_rps), 1
            )
    if args.mode in ("open", "both"):
        loop, xs = build_loop(args)  # fresh server: no cross-shape carryover
        async with loop:
            opened = await run_open_loop(
                loop,
                lambda i: xs[i % len(xs)],
                rate=args.rate,
                duration_s=args.duration,
                arrival=args.arrival,
                seed=args.seed + 2,
                deadline_s=args.deadline_s,
            )
            record["server"] = loop.stats_record()
        record["open"] = opened.record()
    return record


async def run_http(args, url: str) -> dict:
    """The same traffic shapes, but through sockets against ``url``."""
    xs = request_pool(args)
    record: dict = {}
    if args.mode in ("closed", "both"):
        async with HttpLoadTransport.from_url(
            url, connections=args.connections
        ) as transport:
            closed = await run_closed_loop(
                transport,
                lambda i: xs[i % len(xs)],
                clients=args.clients,
                requests_per_client=args.requests_per_client,
            )
        record["closed"] = closed.record()
        if args.mode == "both":
            args.rate = round(
                max(1.0, args.load_fraction * closed.achieved_rps), 1
            )
    if args.mode in ("open", "both"):
        async with HttpLoadTransport.from_url(
            url, connections=args.connections
        ) as transport:
            opened = await run_open_loop(
                transport,
                lambda i: xs[i % len(xs)],
                rate=args.rate,
                duration_s=args.duration,
                arrival=args.arrival,
                seed=args.seed + 2,
                deadline_s=args.deadline_s,
            )
            record["server"] = await transport.stats()
        record["open"] = opened.record()
    return record


def run_transport(args) -> dict:
    if args.transport == "inproc":
        return asyncio.run(run(args))
    if args.url:
        return asyncio.run(run_http(args, args.url))
    # self-host: model + ServingLoop + NetServer on a daemon thread,
    # driven over loopback — the full network path in one command
    net = compile_demo(args).serve_http(
        port=0,
        executor=args.executor,
        max_wave_rows=args.max_wave_rows,
        stats_interval_s=args.stats_interval_s,
    )
    with net:
        return asyncio.run(run_http(args, f"http://127.0.0.1:{net.port}"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="bert", choices=["bert", "vgg", "nmt"])
    parser.add_argument("--mode", default="both", choices=["open", "closed", "both"])
    parser.add_argument("--transport", default="inproc", choices=["inproc", "http"],
                        help="submit in-process, or over real sockets "
                             "through the HTTP front")
    parser.add_argument("--url", default=None, metavar="URL",
                        help="drive an already-running `repro serve --http` "
                             "server (--transport http; default: self-host "
                             "one on an ephemeral port)")
    parser.add_argument("--connections", type=int, default=16,
                        help="pooled keep-alive connections (--transport http)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="offered req/s (open loop)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="offered-load duration in seconds (open loop)")
    parser.add_argument("--arrival", default="poisson", choices=list(ARRIVALS))
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent callers (closed loop)")
    parser.add_argument("--requests-per-client", type=int, default=16)
    parser.add_argument("--load-fraction", type=float, default=0.4,
                        help="open-loop rate as a fraction of measured "
                             "saturation (--mode both)")
    parser.add_argument("--deadline-s", type=float, default=None)
    parser.add_argument("--executor", default="inline",
                        choices=["inline", "threaded", "process"])
    parser.add_argument("--sparsity", type=float, default=0.75)
    parser.add_argument("--granularity", "-G", type=int, default=64)
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--blocks", type=int, default=1)
    parser.add_argument("--rows", type=int, default=8,
                        help="activation rows per request")
    parser.add_argument("--max-wave-rows", type=int, default=None,
                        help="ingress admission cap (default: server config)")
    parser.add_argument("--dtype", default="float32")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--stats-interval-s", type=float, default=0.0)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the record to PATH")
    args = parser.parse_args()
    if args.url and args.transport != "http":
        parser.error("--url requires --transport http")
    if args.connections < 1:
        parser.error("--connections must be >= 1")

    record = run_transport(args)
    text = json.dumps(record, indent=2, sort_keys=True)
    print(text)
    if args.json:
        args.json.write_text(text + "\n")
    ok = all(
        r.get("statuses", {}).get("ok", 0) == r.get("requests", 0)
        for key, r in record.items()
        if key in ("open", "closed")
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
