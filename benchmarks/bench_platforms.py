"""§VIII extension — TW on other platforms, and VW's hardware requirement.

Puts the paper's related-work comparisons on one table at 75 % sparsity:

- TW on the unmodified V100 tensor core (the paper's contribution, ~2×);
- TW on a TPU-like 128×128 systolic array (feasible per §VIII, but the
  high-level interface's per-tile dispatch and pass quantisation keep it
  below the GPU);
- TW with G=32 on the TPU (a *slowdown* — §VIII's "G=128 meets the
  requirement" in the negative);
- VW on the modified sparse tensor core of Zhu et al. (~1.5×, the number
  §III-B quotes) versus VW on commodity cuSparse (a slowdown).
"""

from repro.analysis import ExperimentRecord, format_table, save_results
from repro.gpu import dense_gemm_cuda_cost, dense_gemm_tc_cost, csr_spmm_cost, tw_gemm_cost
from repro.gpu.sparse_tensor_core import vw_sparse_tc_cost
from repro.gpu.systolic import dense_gemm_systolic_cost, tw_gemm_systolic_cost
from repro.gpu.tw_kernel import TWShapeStats

M, K, N = 8192, 768, 768
SPARSITY = 0.75


def platform_table():
    out = {}
    dense_tc = dense_gemm_tc_cost(M, N, K).total_us
    dense_cu = dense_gemm_cuda_cost(M, N, K).total_us
    dense_tpu = dense_gemm_systolic_cost(M, N, K).total_us

    shape128 = TWShapeStats.synthetic(K, N, 128, SPARSITY, seed=1)
    shape32 = TWShapeStats.synthetic(K, N, 32, SPARSITY, seed=1)
    out["TW / V100 tensor core (software only)"] = (
        dense_tc / tw_gemm_cost(M, shape128).total_us
    )
    out["TW G=128 / TPU-like systolic"] = (
        dense_tpu / tw_gemm_systolic_cost(M, shape128).total_us
    )
    out["TW G=32 / TPU-like systolic"] = (
        dense_tpu / tw_gemm_systolic_cost(M, shape32).total_us
    )
    out["VW / modified sparse tensor core"] = (
        dense_tc / vw_sparse_tc_cost(M, K, N, SPARSITY).total_us
    )
    out["VW / commodity cuSparse"] = (
        dense_cu / csr_spmm_cost(M, K, N, int((1 - SPARSITY) * K * N)).total_us
    )
    return out


def test_platforms(benchmark, results_dir):
    table = benchmark(platform_table)
    print(f"\n§VIII platforms at {SPARSITY:.0%} sparsity "
          "(speedup vs each platform's dense):")
    print(format_table(["configuration", "speedup (x)"],
                       [[k, v] for k, v in table.items()]))

    tw_gpu = table["TW / V100 tensor core (software only)"]
    tw_tpu = table["TW G=128 / TPU-like systolic"]
    # the paper's qualitative claims:
    assert tw_gpu > 1.5                                    # the contribution
    assert 1.0 < tw_tpu < tw_gpu                           # feasible, weaker
    assert table["TW G=32 / TPU-like systolic"] < 1.0      # needs G = array dim
    assert 1.2 <= table["VW / modified sparse tensor core"] <= 1.9  # Zhu et al. ~1.5x
    assert table["VW / commodity cuSparse"] < 1.0          # needs the hardware
    assert tw_gpu > table["VW / modified sparse tensor core"]

    save_results(
        ExperimentRecord(
            experiment="platforms",
            description="TW portability (§VIII) and VW's hardware dependence",
            series=table,
            paper_anchors={
                "TW on GPU": 2.26,
                "VW on sparse tensor core (Zhu et al.)": 1.5,
                "TPU feasible if G=128": True,
            },
        ),
        results_dir,
    )
