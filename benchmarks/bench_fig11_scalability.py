"""Fig. 11 — speedup scalability to 99 % sparsity, with counters.

Sweeps TW sparsity from 0 to 99 % on BERT-base shapes (G=128, tensor
cores) and reports, normalised to the dense model: latency speedup, global
load transactions, global store transactions, and FLOPS efficiency.

Paper anchors: ~2× load transactions and ~35 % slowdown at 0 % sparsity
(the int32-mask overhead); net speedup from ~40 %; 2.26× at 75 %; 11.6× at
99 %; FLOPS efficiency holds until ~80 % then collapses with the shrinking
compute.
"""

from repro.analysis import ExperimentRecord, format_table, save_results
from repro.gpu import V100, dense_gemm_tc_cost, tw_gemm_cost
from repro.gpu.counters import normalized_counters
from repro.gpu.tw_kernel import TWShapeStats
from repro.models.registry import bert_base_gemm_shapes

SPARSITIES = (0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.75, 0.80, 0.90, 0.95, 0.99)


def scalability_rows():
    shapes = bert_base_gemm_shapes(batch=64, seq=128)
    rows = []
    for s in SPARSITIES:
        sparse_total = dense_total = None
        merged_sparse = merged_dense = None
        for shape in shapes:
            dense = dense_gemm_tc_cost(shape.m, shape.n, shape.k)
            stats = TWShapeStats.synthetic(shape.k, shape.n, 128, s, seed=1)
            sparse = tw_gemm_cost(shape.m, stats)
            for _ in range(shape.count):
                merged_dense = dense if merged_dense is None else merged_dense.merge_serial(dense)
                merged_sparse = sparse if merged_sparse is None else merged_sparse.merge_serial(sparse)
        row = normalized_counters(merged_sparse, merged_dense, V100, label=f"TW-{s:.0%}")
        rows.append((s, row))
    return rows


def test_fig11_scalability(benchmark, results_dir):
    rows = benchmark(scalability_rows)
    table = [
        [f"TW-{s:.0%}", r.speedup, r.load_transactions_rel,
         r.store_transactions_rel, r.flops_efficiency]
        for s, r in rows
    ]
    print("\nFig. 11: scalability and performance counters (vs dense-TC)")
    print(format_table(
        ["config", "speedup", "loadTx (rel)", "storeTx (rel)", "FLOPS eff"], table
    ))

    by_s = {s: r for s, r in rows}
    # paper anchors
    assert 0.65 <= by_s[0.0].speedup <= 0.85            # ~35% slower at 0%
    assert 1.6 <= by_s[0.0].load_transactions_rel <= 2.4  # ~2x load transactions
    assert 1.7 <= by_s[0.75].speedup <= 2.6             # 2.26x at 75%
    assert 8.0 <= by_s[0.99].speedup <= 15.0            # 11.6x at 99%
    # FLOPS efficiency collapses at extreme sparsity
    assert by_s[0.99].flops_efficiency < by_s[0.5].flops_efficiency

    save_results(
        ExperimentRecord(
            experiment="fig11",
            description="TW scalability to 99% with perf counters (BERT shapes)",
            series={
                "sparsity": [s for s, _ in rows],
                "speedup": [r.speedup for _, r in rows],
                "load_tx_rel": [r.load_transactions_rel for _, r in rows],
                "store_tx_rel": [r.store_transactions_rel for _, r in rows],
                "flops_eff": [r.flops_efficiency for _, r in rows],
            },
            paper_anchors={"s=0": 0.74, "s=0.75": 2.26, "s=0.99": 11.6,
                           "loadTx at 0": 2.0},
        ),
        results_dir,
    )
