"""Fig. 12 — accuracy across all four tasks and all patterns.

Prunes the trained MNLI-like, SQuAD-like, VGG and NMT models with EW / VW /
BW / TW (+ TEW-5 % on MNLI, as in the paper's plot (a)) at three sparsity
levels, with multi-stage pruning and per-stage fine-tuning throughout.

Paper shape: EW is the upper bound everywhere; BW the lower bound; TW
tracks EW closely and beats VW at high sparsity on the transformer tasks
(VW cannot express the uneven sparsity distribution); on NMT both VW and
TW drop quickly past ~60 % ("this model prefers irregular sparsities").
"""

import pytest

from repro.analysis import ExperimentRecord, format_table, save_results

SPARSITIES = (0.5, 0.75, 0.9)

# (task, pattern kwargs tuned to each mini model's geometry)
TASK_KW = {
    "mnli": {"granularity": 8, "block_shape": (4, 4), "vector_size": 16},
    "squad": {"granularity": 8, "block_shape": (4, 4), "vector_size": 16},
    "vgg": {"granularity": 4, "block_shape": (4, 4), "vector_size": 8},
    "nmt": {"granularity": 8, "block_shape": (4, 4), "vector_size": 16},
}


def sweep_task(accuracy_cache, task: str) -> dict[str, list[float]]:
    kw = TASK_KW[task]
    out = {}
    out["EW"] = [accuracy_cache.point(task, "ew", s) for s in SPARSITIES]
    out["VW"] = [
        accuracy_cache.point(task, "vw", s, vector_size=kw["vector_size"])
        for s in SPARSITIES
    ]
    out["BW"] = [
        accuracy_cache.point(task, "bw", s, block_shape=kw["block_shape"])
        for s in SPARSITIES
    ]
    out["TW"] = [
        accuracy_cache.point(task, "tw", s, granularity=kw["granularity"])
        for s in SPARSITIES
    ]
    if task == "mnli":
        out["TEW-5%"] = [
            accuracy_cache.point(
                task, "tew", s, granularity=kw["granularity"], tew_delta=0.05
            )
            for s in SPARSITIES
        ]
    return out


@pytest.mark.parametrize("task", ["mnli", "squad", "vgg", "nmt"])
def test_fig12_accuracy(benchmark, accuracy_cache, results_dir, task):
    series = benchmark.pedantic(
        lambda: sweep_task(accuracy_cache, task), rounds=1, iterations=1
    )
    baseline = accuracy_cache.baseline(task)
    metric = accuracy_cache.pool.get(task).metric_name

    rows = [[label] + vals for label, vals in series.items()]
    print(f"\nFig. 12 ({task}): {metric} vs sparsity (dense {baseline:.3f})")
    print(format_table(["pattern"] + [f"s={s}" for s in SPARSITIES], rows))

    tol = 2.0 if task == "nmt" else 0.05  # BLEU is on a 0-100 scale
    # EW upper-bounds every pattern at the highest sparsity
    for label, vals in series.items():
        if label != "EW":
            assert series["EW"][-1] >= vals[-1] - tol, f"EW below {label} at 90%"
    if task == "nmt":
        # the paper's NMT finding (§VII-C): "both VW and TW experience a
        # rapid accuracy drop compared to EW ... this model prefers
        # irregular sparsities", with "VW slightly outperform[ing] TW"
        assert baseline - series["EW"][0] <= 8.0, "EW collapsed at 50%"
        assert series["EW"][1] > series["TW"][1] + tol
        assert series["VW"][0] >= series["TW"][0] - tol
    else:
        # moderate sparsity is cheap for every pattern except (possibly) BW
        for label in ("EW", "TW", "VW"):
            drop = baseline - series[label][0]
            assert drop <= 0.10, f"{label} collapsed at 50%"

    save_results(
        ExperimentRecord(
            experiment=f"fig12_{task}",
            description=f"Pattern accuracy comparison on {task}",
            series={"sparsities": list(SPARSITIES), "dense": baseline,
                    "metric": metric, **series},
            paper_anchors={
                "EW is the upper bound": True,
                "BW is the lower bound": True,
                "NMT drops fast past 60%": task == "nmt",
            },
        ),
        results_dir,
    )
