"""Fig. 6 — cumulative distribution of per-unit zero fractions.

Overlays different pruning-unit shapes on an EW mask at 75 % sparsity and
compares how many units each shape finds (nearly) empty.  The paper
compares BW 8×8, BW 32×32 and TW's 1×64 row units on BERT-base; with 64
elements each, TW's row unit captures more fully-zero units than BW's 8×8
block, and 32×32 captures the fewest — the irregularity ordering
EW > TW > BW.

Two mask sources are used: (a) the trained mini model's real EW masks with
proportionally scaled units, and (b) a full-size 768×768 synthetic EW mask
with the paper's exact unit shapes.
"""

import numpy as np

from repro.analysis import (
    ExperimentRecord,
    format_table,
    save_results,
    unit_zero_fractions,
    zero_fraction_cdf,
)
from repro.core.importance import ImportanceConfig, score_matrix
from repro.core.masks import global_topk_keep_masks
from repro.patterns import ElementWisePattern

SPARSITY = 0.75
#: paper unit shapes on the full-size mask; mini-model equivalents scale by
#: dim ratio 48/768 = 1/16 (floor 2)
FULL_UNITS = {"BW 8x8": (8, 8), "BW 32x32": (32, 32), "TW row G=64": (1, 64)}
MINI_UNITS = {"BW 2x2": (2, 2), "BW 4x4": (4, 4), "TW row G=8": (1, 8)}


def full_size_ew_mask(seed: int = 0) -> np.ndarray:
    """Synthetic BERT-like importance: heavy-tailed row/column scales."""
    rng = np.random.default_rng(seed)
    base = np.abs(rng.standard_normal((768, 768)))
    row_scale = np.exp(rng.standard_normal(768) * 1.2)[:, None]
    col_scale = np.exp(rng.standard_normal(768) * 1.2)[None, :]
    return global_topk_keep_masks([base * row_scale * col_scale], SPARSITY)[0]


def cdf_rows(masks, units):
    grid = np.array([0.5, 0.75, 0.9, 0.99, 1.0])
    rows = []
    fully = {}
    for label, unit in units.items():
        fractions = np.concatenate(
            [unit_zero_fractions(m, unit) for m in masks]
        )
        _, cdf = zero_fraction_cdf(fractions, grid)
        # P(zero fraction >= x) = 1 - CDF just below x; report survival
        survival = [(fractions >= x).mean() for x in grid]
        rows.append([label] + [f"{v:.3f}" for v in survival])
        fully[label] = float((fractions >= 0.999).mean())
    return rows, fully


def test_fig06_zero_cdf(benchmark, tasks, results_dir):
    bundle = tasks.get("mnli")
    bundle.restore()
    adapter = bundle.adapter()
    cfg = ImportanceConfig(method="taylor")
    scores = [
        score_matrix(w, g, cfg)
        for w, g in zip(adapter.weight_matrices(), adapter.gradient_matrices())
    ]
    mini_masks = ElementWisePattern().prune(scores, SPARSITY).masks
    full_mask = full_size_ew_mask()

    def compute():
        return cdf_rows(mini_masks, MINI_UNITS), cdf_rows([full_mask], FULL_UNITS)

    (mini_rows, mini_full), (full_rows, full_fully) = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    header = ["unit", "P(z>=.5)", "P(z>=.75)", "P(z>=.9)", "P(z>=.99)", "P(z=1)"]
    print("\nFig. 6 (mini model masks, scaled units): fraction of units at "
          "least x zero")
    print(format_table(header, mini_rows))
    print("\nFig. 6 (synthetic full-size 768x768 EW mask, paper units):")
    print(format_table(header, full_rows))

    # the paper's ordering: TW row units capture the most fully-zero units,
    # BW 32x32 the fewest
    assert full_fully["TW row G=64"] >= full_fully["BW 8x8"] >= full_fully["BW 32x32"]

    save_results(
        ExperimentRecord(
            experiment="fig06",
            description="CDF of per-unit zero fraction on EW masks (75%)",
            series={
                "full_size_fully_zero": full_fully,
                "mini_fully_zero": mini_full,
            },
            paper_anchors={
                "ordering": "TW(1x64) > BW(8x8) > BW(32x32) in captured zeros",
                ">10% columns fully pruned at 75%": 0.10,
            },
        ),
        results_dir,
    )
