"""Benchmark support: lazy task training and accuracy-point caching."""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import prepare_task, prune_and_evaluate
from repro.experiments.accuracy import TaskBundle

__all__ = ["TaskPool", "AccuracyCache", "MINI_G", "MINI_BW"]

#: Granularities used on the *mini* accuracy models.  The paper's G values
#: (8…128) are proportioned to hidden dim 768; the mini models use dim 48
#: (BERT) so the equivalent ratio G/dim maps 128→8, 64→4 etc.  We sweep the
#: mini-G values below and label them by their full-size equivalents.
MINI_G = {8: 1, 32: 2, 64: 4, 128: 8, 256: 16}

#: Block shapes for the mini models (full-size 8/32/64 → mini 2/4/8).
MINI_BW = {8: (2, 2), 32: (4, 4), 64: (8, 8)}


class TaskPool:
    """Trains each task's dense model on first use, then reuses it."""

    def __init__(self) -> None:
        self._bundles: dict[str, TaskBundle] = {}

    def get(self, task: str) -> TaskBundle:
        """The trained dense bundle for ``task`` (training on first call)."""
        if task not in self._bundles:
            self._bundles[task] = prepare_task(task, train_samples=768)
        return self._bundles[task]


class AccuracyCache:
    """Disk-backed memo of ``prune_and_evaluate`` results.

    Keys are the full parameterisation, so distinct granularities/blocks/
    deltas never collide.  The JSON file survives across benchmark runs;
    delete it to force recomputation.
    """

    def __init__(self, pool: TaskPool, path: Path) -> None:
        self.pool = pool
        self.path = path
        self._data: dict[str, float] = {}
        if path.exists():
            self._data = json.loads(path.read_text())

    @staticmethod
    def _key(task: str, pattern: str, sparsity: float, **kw) -> str:
        extra = ",".join(f"{k}={v}" for k, v in sorted(kw.items()))
        return f"{task}|{pattern}|{sparsity:.4f}|{extra}"

    def baseline(self, task: str) -> float:
        """Dense metric for ``task`` (trains on first call)."""
        key = self._key(task, "dense", 0.0)
        if key not in self._data:
            self._data[key] = self.pool.get(task).baseline_metric
            self._save()
        return self._data[key]

    def point(self, task: str, pattern: str, sparsity: float, **kw) -> float:
        """Metric after pruning ``task`` with ``pattern`` at ``sparsity``."""
        key = self._key(task, pattern, sparsity, **kw)
        if key not in self._data:
            bundle = self.pool.get(task)
            self._data[key] = prune_and_evaluate(bundle, pattern, sparsity, **kw)
            self._save()
        return self._data[key]

    def _save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._data, indent=1))
