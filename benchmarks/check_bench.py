"""Diff a fresh hot-path benchmark run against the checked-in baseline.

Walks ``BENCH_hotpaths.json`` and a freshly produced record in parallel and
flags every production timing (``*_ms`` leaves, excluding the
``reference_*`` oracle columns) that regressed by more than ``--threshold``
(default 2x).  This is the PR-time companion to the ``perf_smoke`` pytest
tripwire: the tripwire only catches catastrophic loop regressions, this
catches the gradual ones the ROADMAP perf contract warns about.

Usage::

    PYTHONPATH=src python benchmarks/check_bench.py            # run fresh, diff
    PYTHONPATH=src python benchmarks/check_bench.py --quick    # faster sweep
    PYTHONPATH=src python benchmarks/check_bench.py --fresh F  # diff a saved run

Exits non-zero when a regression is flagged, so it can gate CI.  Absolute
times on different machines are incomparable — regenerate the baseline with
``bench_hotpaths.py`` before gating on a new host.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "BENCH_hotpaths.json"


#: fields that identify a benchmark row — rows are matched by these, never
#: by list position, so a changed sweep can't silently compare two
#: different configs against each other
_IDENTITY_FIELDS = (
    "m", "granularity", "sparsity", "dtype", "epilogue", "shape", "scale", "model"
)


def _row_label(value, index: int) -> str:
    if isinstance(value, dict):
        ident = [
            f"{f}={value[f]}" for f in _IDENTITY_FIELDS if f in value
        ]
        if ident:
            return "[" + ",".join(ident) + "]"
    return f"[{index}]"


def timing_leaves(node, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric ``*_ms`` leaf to ``identity.path -> value``."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (dict, list)):
                out.update(timing_leaves(value, path))
            elif isinstance(value, (int, float)) and key.endswith("_ms"):
                out[path] = float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(timing_leaves(value, f"{prefix}{_row_label(value, i)}"))
    return out


def is_production_timing(path: str) -> bool:
    """Oracle (``reference_*``) columns are trajectory-only, never gated."""
    leaf = path.rsplit(".", 1)[-1]
    return not leaf.startswith("reference")


def compare(
    baseline: dict, fresh: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing matching ``*_ms`` leaves."""
    base = timing_leaves(baseline)
    new = timing_leaves(fresh)
    regressions: list[str] = []
    notes: list[str] = []
    for path in sorted(base):
        if path not in new:
            notes.append(f"baseline-only timing {path} (bench config changed?)")
            continue
        if not is_production_timing(path):
            continue
        b, f = base[path], new[path]
        if b <= 0:
            continue
        ratio = f / b
        if ratio > threshold:
            regressions.append(
                f"{path}: {b:.2f}ms -> {f:.2f}ms ({ratio:.1f}x slower)"
            )
    for path in sorted(set(new) - set(base)):
        notes.append(f"new timing {path} (not in baseline)")
    return regressions, notes


def run_fresh(quick: bool) -> dict:
    """Run ``bench_hotpaths.py`` into a temp file and load the record."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "fresh.json"
        cmd = [sys.executable, str(REPO / "benchmarks" / "bench_hotpaths.py"), "--out", str(out)]
        if quick:
            cmd.append("--quick")
        subprocess.run(cmd, check=True)
        return json.loads(out.read_text())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument(
        "--fresh", type=Path, default=None,
        help="saved fresh run to diff; omitted = run bench_hotpaths.py now",
    )
    parser.add_argument("--quick", action="store_true", help="reduced fresh sweep")
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="flag production timings slower than baseline by this factor",
    )
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    if args.fresh is not None:
        fresh = json.loads(args.fresh.read_text())
    else:
        fresh = run_fresh(args.quick)
    if args.quick != bool(baseline.get("meta", {}).get("quick")):
        print(
            "note: quick/full sweep mismatch vs baseline — only matching "
            "configs are compared"
        )

    regressions, notes = compare(baseline, fresh, args.threshold)
    for note in notes:
        print(f"  note: {note}")
    if regressions:
        print(f"PERF REGRESSIONS (> {args.threshold:.1f}x vs {args.baseline.name}):")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"ok: no production timing regressed > {args.threshold:.1f}x "
          f"({args.baseline.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
