"""Headline result — average speedups at accuracy-matched sparsity.

The paper's abstract numbers: at matched accuracy (BERT < 3 % drop, VGG
< 1 % drop, NMT < 1 BLEU drop), TW averages **1.95×** on tensor cores and
**2.86×** on CUDA cores across the three models, while the baselines all
*slow down*: BW 0.41× (TC), EW 0.69× and VW 0.47× (CUDA).

This bench selects, per pattern and model, the highest measured sparsity
within the drop budget (from the accuracy sweeps), prices it on the
simulator, and averages across models.
"""

import numpy as np

from repro.analysis import ExperimentRecord, format_table, save_results
from repro.experiments import accuracy_matched_sparsity, gemm_speedup
from repro.experiments.matched import DROP_BUDGETS

SPARSITIES = (0.25, 0.5, 0.75, 0.9)
TASK_TO_MODEL = {"mnli": "bert", "vgg": "vgg", "nmt": "nmt"}
MINI_KW = {
    "mnli": {"granularity": 8, "block_shape": (4, 4), "vector_size": 16},
    "vgg": {"granularity": 4, "block_shape": (4, 4), "vector_size": 8},
    "nmt": {"granularity": 8, "block_shape": (4, 4), "vector_size": 16},
}


def matched_speedups(accuracy_cache):
    """Per-pattern speedups at each model's accuracy-matched sparsity."""
    out: dict[str, dict[str, tuple[float | None, float | None]]] = {}
    for task, model in TASK_TO_MODEL.items():
        kw = MINI_KW[task]
        baseline = accuracy_cache.baseline(task)
        budget = DROP_BUDGETS[task]
        out[task] = {}
        for pattern in ("tw", "ew", "vw", "bw"):
            acc_kw = {}
            lat_kw: dict = {"engine": "tensor_core"}
            if pattern == "tw":
                acc_kw = {"granularity": kw["granularity"]}
                lat_kw["granularity"] = 128
            elif pattern == "bw":
                acc_kw = {"block_shape": kw["block_shape"]}
                lat_kw["block_size"] = 32
            elif pattern == "vw":
                acc_kw = {"vector_size": kw["vector_size"]}
            metrics = [
                accuracy_cache.point(task, pattern, s, **acc_kw) for s in SPARSITIES
            ]
            matched = accuracy_matched_sparsity(SPARSITIES, metrics, baseline, budget)
            if matched is None:
                out[task][pattern] = (None, None)
                continue
            tc = gemm_speedup(model, pattern, matched, **lat_kw)
            cu = gemm_speedup(
                model, pattern, matched,
                **{**lat_kw, "engine": "cuda_core"},
            )
            out[task][pattern] = (matched, (tc, cu))
    return out


def test_headline(benchmark, accuracy_cache, results_dir):
    table = benchmark.pedantic(
        lambda: matched_speedups(accuracy_cache), rounds=1, iterations=1
    )

    rows = []
    averages: dict[str, dict[str, list[float]]] = {}
    for task, per_pattern in table.items():
        for pattern, (matched, speeds) in per_pattern.items():
            if matched is None:
                rows.append([task, pattern.upper(), "-", "-", "-"])
                continue
            tc, cu = speeds
            rows.append([task, pattern.upper(), f"{matched:.0%}", tc, cu])
            averages.setdefault(pattern, {"tc": [], "cuda": []})
            averages[pattern]["tc"].append(tc)
            averages[pattern]["cuda"].append(cu)

    print("\nHeadline: speedups at accuracy-matched sparsity")
    print(format_table(
        ["task", "pattern", "matched s", "TC speedup", "CUDA speedup"], rows
    ))

    avg_rows = []
    summary = {}
    for pattern, d in averages.items():
        tc_avg = float(np.mean(d["tc"])) if d["tc"] else float("nan")
        cu_avg = float(np.mean(d["cuda"])) if d["cuda"] else float("nan")
        avg_rows.append([pattern.upper(), tc_avg, cu_avg])
        summary[pattern] = {"tc": tc_avg, "cuda": cu_avg}
    print("\naverages across models (at OUR models' matched sparsities):")
    print(format_table(["pattern", "TC avg", "CUDA avg"], avg_rows))
    print("paper: TW 1.95x (TC) / 2.86x (CUDA); BW 0.41x; EW 0.69x; VW 0.47x")
    print("note: the mini accuracy models saturate differently from "
          "BERT-base, so matched sparsities differ (see EXPERIMENTS.md).")

    # the matched regime: TW never slows inference down, EW/VW always do
    assert summary["tw"]["tc"] > 1.0 and summary["tw"]["cuda"] > 1.0
    for p in ("ew", "vw"):
        if p in summary and not np.isnan(summary[p]["tc"]):
            assert summary[p]["tc"] < 1.0 and summary[p]["cuda"] < 1.0

    # the paper's canonical regime: all patterns at the 75% sparsity BERT
    # sustains (<3% drop in the paper).  This pins the who-wins shape
    # independently of the mini models' different saturation behaviour.
    canonical = {
        "tw": gemm_speedup("bert", "tw", 0.75, granularity=128),
        "ew": gemm_speedup("bert", "ew", 0.75),
        "vw": gemm_speedup("bert", "vw", 0.75),
        "bw": gemm_speedup("bert", "bw", 0.66, block_size=32),  # BW affords less
    }
    print("\ncanonical 75% regime (BERT shapes): "
          + "  ".join(f"{k.upper()}={v:.2f}x" for k, v in canonical.items()))
    assert canonical["tw"] > 1.5
    assert canonical["ew"] < 1.0
    assert canonical["vw"] < 1.0
    assert canonical["bw"] < 1.0

    save_results(
        ExperimentRecord(
            experiment="headline",
            description="Average speedups at accuracy-matched sparsity",
            series={"per_task": {
                t: {p: {"matched": m, "speedups": s} for p, (m, s) in d.items()}
                for t, d in table.items()
            }, "averages": summary, "canonical_75pct": canonical},
            paper_anchors={"TW": {"tc": 1.95, "cuda": 2.86},
                           "BW": 0.41, "EW": 0.69, "VW": 0.47},
            notes="Mini accuracy models tolerate higher sparsity than "
                  "BERT-base (task saturation), so matched sparsities and "
                  "averages run high; the canonical-75% row carries the "
                  "who-wins comparison.",
        ),
        results_dir,
    )
