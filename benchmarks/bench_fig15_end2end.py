"""Fig. 15 — end-to-end latency breakdown and the optimisation ablation.

Prices full BERT and NMT forward passes at 75 % TW sparsity under the
paper's three implementation configurations (w/o transpose, transpose
only, transpose & fusion) against the fused dense baseline, decomposed
into GEMM / transpose / other kernels.

Paper anchors: without the transpose optimisation the GEMM cannot benefit
from sparsity; the per-layer transpose tax is ~10 %; fully optimised
end-to-end speedups are 1.61× (BERT) and 1.86× (NMT) vs GEMM-only 2.26× /
2.38× — the non-GEMM Amdahl gap.
"""

import pytest

from repro.analysis import ExperimentRecord, format_table, save_results
from repro.experiments.latency import end_to_end_report
from repro.runtime import EngineConfig, TransposePlan

SPARSITY = 0.75

CONFIGS = {
    "dense": ("dense", 0.0, EngineConfig()),
    "w/o transpose": ("tw", SPARSITY, EngineConfig(transpose=TransposePlan("none"), fusion=False)),
    "transpose only": ("tw", SPARSITY, EngineConfig(transpose=TransposePlan("per_layer"), fusion=False)),
    "transpose+fusion": ("tw", SPARSITY, EngineConfig()),
}


@pytest.mark.parametrize("model", ["bert", "nmt"])
def test_fig15_end_to_end(benchmark, results_dir, model):
    def compute():
        return {
            label: end_to_end_report(model, pattern, sparsity, cfg)
            for label, (pattern, sparsity, cfg) in CONFIGS.items()
        }

    reports = benchmark(compute)
    dense_total = reports["dense"].total_us
    rows = []
    series = {}
    for label, rep in reports.items():
        fr = rep.fractions()
        rows.append([
            label, rep.total_us / dense_total,
            fr["gemm"], fr["transpose"], fr["others"],
        ])
        series[label] = {"norm_latency": rep.total_us / dense_total, **fr}

    print(f"\nFig. 15 ({model}): end-to-end latency at {SPARSITY:.0%} TW sparsity")
    print(format_table(
        ["config", "norm latency", "gemm", "transpose", "others"], rows
    ))

    # paper shape (NMT's boundary transpose includes the seq×vocab logits,
    # which is proportionally heavier than BERT's hidden-dim output)
    assert series["w/o transpose"]["norm_latency"] >= 0.95   # no benefit
    limit = 0.80 if model == "bert" else 0.90
    assert series["transpose+fusion"]["norm_latency"] < limit  # real e2e win
    assert (series["transpose only"]["norm_latency"]
            > series["transpose+fusion"]["norm_latency"])
    assert series["transpose only"]["transpose"] > series["transpose+fusion"]["transpose"]

    e2e_speedup = 1.0 / series["transpose+fusion"]["norm_latency"]
    save_results(
        ExperimentRecord(
            experiment=f"fig15_{model}",
            description=f"End-to-end breakdown for {model} at 75% TW",
            series=series,
            paper_anchors={
                "bert": {"gemm_only": 2.26, "end_to_end": 1.61},
                "nmt": {"gemm_only": 2.38, "end_to_end": 1.86},
                "measured_end_to_end": e2e_speedup,
            },
        ),
        results_dir,
    )
