"""Shared fixtures for the figure benchmarks.

Training is expensive relative to pruning, so each task's dense model is
trained once per session (lazily) and snapshotted; every pruning run
restores the snapshot.  Accuracy points are additionally cached on disk
(``results/accuracy_cache.json``) so that figure benchmarks which share
sweeps (Fig. 12 / Fig. 14 / headline) do not recompute them within or
across runs.  Delete the cache file to force re-measurement.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from benchmarks._shared import AccuracyCache, TaskPool

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Where benchmark records are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def tasks() -> TaskPool:
    """Lazily-trained dense models for the four tasks."""
    return TaskPool()


@pytest.fixture(scope="session")
def accuracy_cache(tasks, results_dir) -> AccuracyCache:
    """Disk-backed accuracy-point cache shared by the figure benches."""
    return AccuracyCache(tasks, results_dir / "accuracy_cache.json")
