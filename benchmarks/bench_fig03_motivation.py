"""Fig. 3 — motivation: sparse baselines lose to dense on real hardware.

Reproduces the sparsity + execution-time comparison for VGG and BERT:
Dense-T (tensor cores), Dense-C (CUDA cores), EW, VW (cuSparse on CUDA
cores) and BW (BlockSparse on tensor cores), each sparse pattern at a
representative accuracy-matched sparsity.

Paper shape: every sparse baseline is *slower* than its dense reference —
EW/VW slower than Dense-C, BW ~3× slower than Dense-T — despite >50 %
sparsity.
"""

from repro.analysis import ExperimentRecord, ascii_bars, format_table, save_results
from repro.experiments.latency import MODEL_SHAPES
from repro.runtime import EngineConfig, InferenceEngine, LayerPlan

# accuracy-matched sparsities (each pattern pruned until ~1% drop; these are
# the levels our Fig. 12 accuracy sweeps support for the two models)
MATCHED = {"ew": 0.80, "vw": 0.75, "bw": 0.55}


def motivation_rows(model: str) -> list[list]:
    infer = InferenceEngine()
    shapes = MODEL_SHAPES[model]()
    tc = EngineConfig(engine="tensor_core")
    cu = EngineConfig(engine="cuda_core")

    def total(pattern: str, sparsity: float, cfg: EngineConfig) -> float:
        plans = [
            LayerPlan(s, pattern=pattern, sparsity=sparsity, block_size=32)
            for s in shapes
        ]
        return sum(infer.gemm_cost(p, cfg).total_us * p.shape.count for p in plans) / 1e3

    dense_t = total("dense", 0.0, tc)
    dense_c = total("dense", 0.0, cu)
    rows = [
        ["Dense-T", 0.0, dense_t],
        ["Dense-C", 0.0, dense_c],
        ["EW", MATCHED["ew"], total("ew", MATCHED["ew"], cu)],
        ["VW", MATCHED["vw"], total("vw", MATCHED["vw"], cu)],
        ["BW", MATCHED["bw"], total("bw", MATCHED["bw"], tc)],
    ]
    return rows


def test_fig03_motivation(benchmark, results_dir):
    rows_by_model = benchmark.pedantic(
        lambda: {m: motivation_rows(m) for m in ("vgg", "bert")},
        rounds=1, iterations=1,
    )
    series = {}
    for model, rows in rows_by_model.items():
        print(f"\nFig. 3 ({model.upper()}): sparsity and GEMM execution time")
        print(format_table(["config", "sparsity", "time (ms)"], rows))
        print(ascii_bars({r[0]: r[2] for r in rows}))
        series[model] = {r[0]: {"sparsity": r[1], "time_ms": r[2]} for r in rows}

        dense_t = series[model]["Dense-T"]["time_ms"]
        dense_c = series[model]["Dense-C"]["time_ms"]
        # the paper's qualitative claims:
        assert series[model]["EW"]["time_ms"] > dense_c      # EW slower than Dense-C
        assert series[model]["VW"]["time_ms"] > dense_c      # VW slower than Dense-C
        assert series[model]["BW"]["time_ms"] > dense_t      # BW slower than Dense-T
        assert dense_t < dense_c                              # tensor cores win dense

    bw_ratio = series["bert"]["BW"]["time_ms"] / series["bert"]["Dense-T"]["time_ms"]
    save_results(
        ExperimentRecord(
            experiment="fig03",
            description="Sparse baselines vs dense on V100 (motivation)",
            series=series,
            paper_anchors={
                "EW/VW slower than Dense-C": True,
                "BW ~3x slower than Dense-T": 3.0,
                "measured BW/Dense-T (bert)": bw_ratio,
            },
        ),
        results_dir,
    )
