"""Fig. 10 — the hybrid TEW pattern's accuracy/latency trade-off.

(a) accuracy of TEW at several δ (EW-restored fraction) vs pure TW and EW
    on the trained MiniBERT;
(b) latency of dense / TW / TEW-δ at fixed 75 % sparsity, on tensor cores
    and on CUDA cores (both normalised to dense on CUDA cores, as in the
    paper's plot).

Paper shape: a small δ (≈5 %) recovers TW's accuracy gap to EW; on tensor
cores even δ=1 % erases the speedup (the residual runs on CUDA cores), but
on CUDA cores TEW-1 % is still ~2× faster than dense — TEW is the pattern
for tensor-core-less devices.
"""

from repro.analysis import ExperimentRecord, format_table, save_results
from repro.experiments import gemm_speedup
from repro.experiments.latency import MODEL_SHAPES
from repro.runtime import EngineConfig, InferenceEngine, LayerPlan

SPARSITY = 0.75
DELTAS = (0.01, 0.05, 0.10)


def test_fig10a_accuracy(benchmark, accuracy_cache, results_dir):
    def sweep():
        out = {
            "EW": accuracy_cache.point("mnli", "ew", SPARSITY),
            "TW": accuracy_cache.point("mnli", "tw", SPARSITY, granularity=8),
        }
        for d in DELTAS:
            out[f"TEW {d:.0%}"] = accuracy_cache.point(
                "mnli", "tew", SPARSITY, granularity=8, tew_delta=d
            )
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = accuracy_cache.baseline("mnli")
    rows = [[k, v, baseline - v] for k, v in series.items()]
    print(f"\nFig. 10a: accuracy at {SPARSITY:.0%} sparsity (dense {baseline:.3f})")
    print(format_table(["config", "accuracy", "drop"], rows))

    # paper shape: TEW with a moderate delta closes (most of) the TW->EW gap
    best_tew = max(v for k, v in series.items() if k.startswith("TEW"))
    assert best_tew >= series["TW"] - 0.02

    save_results(
        ExperimentRecord(
            experiment="fig10a",
            description="TEW accuracy vs delta at 75% sparsity",
            series={**series, "dense": baseline},
            paper_anchors={"TEW 5% catches EW": True},
        ),
        results_dir,
    )


def test_fig10b_latency(benchmark, results_dir):
    infer = InferenceEngine()
    shapes = MODEL_SHAPES["bert"]()

    def total_us(pattern, engine, delta=0.0):
        cfg = EngineConfig(engine=engine)
        plans = [
            LayerPlan(s, pattern=pattern, sparsity=SPARSITY if pattern != "dense" else 0.0,
                      granularity=128, tew_delta=delta)
            for s in shapes
        ]
        return sum(infer.gemm_cost(p, cfg).total_us * p.shape.count for p in plans)

    def sweep():
        dense_cuda = total_us("dense", "cuda_core")
        rows = {}
        for engine in ("tensor_core", "cuda_core"):
            rows[f"dense/{engine}"] = total_us("dense", engine) / dense_cuda
            rows[f"TW/{engine}"] = total_us("tw", engine) / dense_cuda
            for d in DELTAS:
                rows[f"TEW-{d:.0%}/{engine}"] = total_us("tew", engine, d) / dense_cuda
        return rows

    series = benchmark(sweep)
    print(f"\nFig. 10b: latency at {SPARSITY:.0%}, normalised to dense on CUDA cores")
    print(format_table(
        ["config", "norm latency"], [[k, v] for k, v in series.items()]
    ))

    # paper shape: on TC, TEW ~1% is no faster than the dense TC model;
    # on CUDA cores TEW-1% is ~2x faster than dense
    assert series["TEW-1%/tensor_core"] >= series["dense/tensor_core"] * 0.9
    assert series["TEW-5%/tensor_core"] > series["TEW-1%/tensor_core"]
    assert series["TEW-1%/cuda_core"] < 0.7  # >1.4x vs dense-CUDA
    assert series["TW/tensor_core"] < series["dense/tensor_core"]

    save_results(
        ExperimentRecord(
            experiment="fig10b",
            description="TEW latency vs delta on TC and CUDA cores",
            series=series,
            paper_anchors={
                "TEW-1% no TC speedup": True,
                "TEW-1% ~2x on CUDA cores": 0.5,
                "TW on TC": 1 / 2.26,
            },
        ),
        results_dir,
    )
