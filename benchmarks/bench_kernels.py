"""Microbenchmarks of the functional kernels (pytest-benchmark timings).

These measure the *host-side NumPy* kernels — useful for tracking the
library's own performance regressions, not for GPU claims (those come from
the cost models).  Shapes are small BERT-like tiles.
"""

import numpy as np
import pytest

from repro.core.tile_sparsity import TWPruneConfig, tw_prune_step
from repro.formats import BSRMatrix, CSRMatrix, TiledTWMatrix
from repro.kernels import (
    blocked_transpose,
    bsr_left_gemm,
    csr_spmm,
    gemm,
    im2col,
    tiled_gemm,
    tw_batched_gemm,
    tw_gemm,
)

M, K, N, G = 128, 256, 256, 64


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((M, K))
    w = rng.standard_normal((K, N))
    step = tw_prune_step([np.abs(w)], 0.75, TWPruneConfig(granularity=G))
    tw = TiledTWMatrix.from_masks(w, G, step.col_keeps[0], step.row_masks[0])
    w_masked = w * step.masks[0]
    return a, w, w_masked, tw


def test_bench_dense_gemm(benchmark, operands):
    a, w, _, _ = operands
    out = benchmark(lambda: gemm(a, w))
    assert out.shape == (M, N)


def test_bench_tiled_gemm(benchmark, operands):
    a, w, _, _ = operands
    out = benchmark(lambda: tiled_gemm(a, w))
    np.testing.assert_allclose(out, a @ w, atol=1e-9)


def test_bench_tw_gemm(benchmark, operands):
    a, _, w_masked, tw = operands
    out = benchmark(lambda: tw_gemm(a, tw))
    np.testing.assert_allclose(out, a @ w_masked, atol=1e-9)


def test_bench_tw_batched_gemm(benchmark, operands):
    a, _, w_masked, tw = operands
    out = benchmark(lambda: tw_batched_gemm(a, tw))
    np.testing.assert_allclose(out, a @ w_masked, atol=1e-9)


def test_bench_csr_spmm(benchmark):
    rng = np.random.default_rng(1)
    w = rng.standard_normal((K, N)) * (rng.random((K, N)) < 0.25)
    csr = CSRMatrix.from_dense(w.T)  # W^T sparse, as cuSparse would hold it
    x = rng.standard_normal((K, M))
    out = benchmark(lambda: csr_spmm(csr, x))
    assert out.shape == (N, M)


def test_bench_bsr_gemm(benchmark):
    rng = np.random.default_rng(2)
    keep = rng.random((K // 32, N // 32)) < 0.5
    w = (
        rng.standard_normal((K // 32, N // 32, 32, 32)) * keep[..., None, None]
    ).transpose(0, 2, 1, 3).reshape(K, N)
    bsr = BSRMatrix.from_dense(w, (32, 32))
    a = rng.standard_normal((M, K))
    out = benchmark(lambda: bsr_left_gemm(a, bsr))
    np.testing.assert_allclose(out, a @ w, atol=1e-9)


def test_bench_im2col(benchmark):
    rng = np.random.default_rng(3)
    x = rng.standard_normal((8, 16, 32, 32))
    cols = benchmark(lambda: im2col(x, 3, 3, 1, 1))
    assert cols.shape == (8 * 32 * 32, 16 * 9)


def test_bench_blocked_transpose(benchmark):
    rng = np.random.default_rng(4)
    a = rng.standard_normal((1024, 768))
    out = benchmark(lambda: blocked_transpose(a))
    assert out.shape == (768, 1024)
